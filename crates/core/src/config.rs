//! Engine configuration: algorithm variants and search budgets.

use tcsm_filter::FilterMode;
use tcsm_graph::codec::{CodecError, Decoder, Encoder};

/// Which parts of the TCM algorithm are enabled — the §VI-B ablation axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmPreset {
    /// Full TCM: TC-matchable-edge filter + temporal candidate sets +
    /// the three time-constrained pruning techniques.
    Tcm,
    /// `TCM-Pruning` of §VI-B: the filter stays on, backtracking pruning is
    /// disabled (candidates still respect `R⁺`, Definition V.2).
    TcmNoPruning,
    /// Pruning without the filter (extra ablation, not in the paper).
    TcmNoFilter,
    /// SymBi baseline: label-only filtering, no temporal work during the
    /// search, temporal order post-checked on complete embeddings.
    SymBiPostCheck,
}

impl AlgorithmPreset {
    /// Filter mode implied by the preset.
    pub fn filter_mode(self) -> FilterMode {
        match self {
            AlgorithmPreset::Tcm | AlgorithmPreset::TcmNoPruning => FilterMode::Tc,
            AlgorithmPreset::TcmNoFilter | AlgorithmPreset::SymBiPostCheck => FilterMode::LabelOnly,
        }
    }

    /// Whether candidate edge sets apply the `R⁺` temporal checks of
    /// Definition V.2 during the search.
    pub fn temporal_candidates(self) -> bool {
        !matches!(self, AlgorithmPreset::SymBiPostCheck)
    }

    /// Whether the §V pruning techniques run.
    pub fn pruning(self) -> bool {
        matches!(self, AlgorithmPreset::Tcm | AlgorithmPreset::TcmNoFilter)
    }

    /// Whether complete embeddings must be re-verified against `≺`
    /// (only needed when the search itself did not enforce it).
    pub fn post_check(self) -> bool {
        matches!(self, AlgorithmPreset::SymBiPostCheck)
    }
}

/// Individual switches for the three §V pruning techniques, for ablation
/// studies beyond the paper's whole-pruning on/off comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruningFlags {
    /// Case 1: interchangeable candidates when `R⁻_M(e) = ∅`.
    pub case1: bool,
    /// Case 2: chronological scan with early break on uniform `R⁻`.
    pub case2: bool,
    /// Case 3: temporal-failing-set sibling pruning.
    pub case3: bool,
}

impl PruningFlags {
    /// All three techniques on (the TCM default).
    pub const ALL: PruningFlags = PruningFlags {
        case1: true,
        case2: true,
        case3: true,
    };
    /// All off (the `TCM-Pruning` ablation).
    pub const NONE: PruningFlags = PruningFlags {
        case1: false,
        case2: false,
        case3: false,
    };

    /// Only the given case enabled.
    pub fn only(case: u8) -> PruningFlags {
        PruningFlags {
            case1: case == 1,
            case2: case == 2,
            case3: case == 3,
        }
    }

    /// Any technique enabled?
    pub fn any(self) -> bool {
        self.case1 || self.case2 || self.case3
    }
}

/// Limits for one `FindMatches` invocation (the problem is NP-hard; the
/// paper uses a 1-hour wall-clock limit per query, scaled down here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum backtracking nodes visited per event (0 = unlimited).
    pub max_nodes_per_event: u64,
    /// Maximum embeddings reported per event (0 = unlimited).
    pub max_matches_per_event: u64,
    /// Total node budget across the whole stream (0 = unlimited); once
    /// exhausted the engine marks the run unsolved and stops searching.
    pub max_total_nodes: u64,
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Algorithm variant.
    pub preset: AlgorithmPreset,
    /// Per-technique pruning switches; only consulted when the preset
    /// enables pruning at all. `None` means "whatever the preset says".
    pub pruning_override: Option<PruningFlags>,
    /// Search limits.
    pub budget: SearchBudget,
    /// Treat the data graph as directed (query edges with
    /// [`tcsm_graph::Direction::AToB`] then require matching direction).
    pub directed: bool,
    /// Keep reported embeddings in memory (disable for counting-only runs).
    pub collect_matches: bool,
    /// Process the stream in same-timestamp delta batches (one filter/DCS
    /// worklist drain and one `FindMatches` sweep per batch) instead of one
    /// edge per event. The reported match multiset is identical in both
    /// modes; only throughput (and the granularity of per-event search
    /// budgets, which become per-batch) differs. Defaults to `false`, the
    /// paper's serial Algorithm 1.
    pub batching: bool,
    /// Width of the intra-query worker pool (caller included): the four
    /// filter-instance updates of every event/batch and the per-seed
    /// searches of every delta-batch sweep fan out across this many lanes.
    ///
    /// * `0` — **serial** (the default): no pool is created and every phase
    ///   runs on the caller, exactly the pre-parallel engine.
    /// * `1` — the pool machinery with only the caller lane: useful for
    ///   exercising the parallel code paths deterministically.
    /// * `n > 1` — the caller plus `n − 1` parked worker threads.
    ///
    /// The reported match stream is byte-identical at every width (the
    /// differential suite pins this); only thread placement changes. Runs
    /// with any [`SearchBudget`] limit set keep their sweeps serial so
    /// budget semantics stay exact.
    ///
    /// `Default::default()` reads the `TCSM_THREADS` environment variable
    /// (once per process) so CI can route the whole test suite through the
    /// parallel paths without touching sources; explicit field values
    /// override it.
    pub threads: usize,
}

/// The `TCSM_THREADS` override consulted by `EngineConfig::default()`
/// (invalid or unset ⇒ 0, the serial engine).
fn env_default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("TCSM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            preset: AlgorithmPreset::Tcm,
            pruning_override: None,
            budget: SearchBudget::default(),
            directed: false,
            collect_matches: true,
            batching: false,
            threads: env_default_threads(),
        }
    }
}

impl EngineConfig {
    /// The effective per-case pruning switches.
    pub fn pruning_flags(&self) -> PruningFlags {
        match self.pruning_override {
            Some(f) if self.preset.pruning() => f,
            None if self.preset.pruning() => PruningFlags::ALL,
            _ => PruningFlags::NONE,
        }
    }

    /// Is any search budget configured? Budgeted runs keep their sweeps
    /// serial (one cursor over the whole batch) so exhaustion points stay
    /// exact; unbudgeted ones may fan seeds out across the pool.
    pub fn budget_limited(&self) -> bool {
        self.budget.max_nodes_per_event != 0
            || self.budget.max_matches_per_event != 0
            || self.budget.max_total_nodes != 0
    }

    /// Serializes the configuration (snapshot manifest format).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self.preset {
            AlgorithmPreset::Tcm => 0,
            AlgorithmPreset::TcmNoPruning => 1,
            AlgorithmPreset::TcmNoFilter => 2,
            AlgorithmPreset::SymBiPostCheck => 3,
        });
        match self.pruning_override {
            None => enc.put_u8(0),
            Some(f) => {
                enc.put_u8(1);
                enc.put_bool(f.case1);
                enc.put_bool(f.case2);
                enc.put_bool(f.case3);
            }
        }
        enc.put_u64(self.budget.max_nodes_per_event);
        enc.put_u64(self.budget.max_matches_per_event);
        enc.put_u64(self.budget.max_total_nodes);
        enc.put_bool(self.directed);
        enc.put_bool(self.collect_matches);
        enc.put_bool(self.batching);
        enc.put_usize(self.threads);
    }

    /// Inverse of [`EngineConfig::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<EngineConfig, CodecError> {
        let preset = match dec.get_u8()? {
            0 => AlgorithmPreset::Tcm,
            1 => AlgorithmPreset::TcmNoPruning,
            2 => AlgorithmPreset::TcmNoFilter,
            3 => AlgorithmPreset::SymBiPostCheck,
            other => {
                return Err(CodecError::Invalid(format!("bad preset tag {other}")));
            }
        };
        let pruning_override = match dec.get_u8()? {
            0 => None,
            1 => Some(PruningFlags {
                case1: dec.get_bool()?,
                case2: dec.get_bool()?,
                case3: dec.get_bool()?,
            }),
            other => {
                return Err(CodecError::Invalid(format!("bad override tag {other}")));
            }
        };
        Ok(EngineConfig {
            preset,
            pruning_override,
            budget: SearchBudget {
                max_nodes_per_event: dec.get_u64()?,
                max_matches_per_event: dec.get_u64()?,
                max_total_nodes: dec.get_u64()?,
            },
            directed: dec.get_bool()?,
            collect_matches: dec.get_bool()?,
            batching: dec.get_bool()?,
            threads: dec.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_axes() {
        assert_eq!(AlgorithmPreset::Tcm.filter_mode(), FilterMode::Tc);
        assert!(AlgorithmPreset::Tcm.pruning());
        assert!(!AlgorithmPreset::Tcm.post_check());

        assert_eq!(AlgorithmPreset::TcmNoPruning.filter_mode(), FilterMode::Tc);
        assert!(!AlgorithmPreset::TcmNoPruning.pruning());
        assert!(AlgorithmPreset::TcmNoPruning.temporal_candidates());

        assert_eq!(
            AlgorithmPreset::SymBiPostCheck.filter_mode(),
            FilterMode::LabelOnly
        );
        assert!(AlgorithmPreset::SymBiPostCheck.post_check());
        assert!(!AlgorithmPreset::SymBiPostCheck.temporal_candidates());
    }
}
