//! `FindMatches` (Algorithm 4): backtracking with time-constrained pruning.
//!
//! The search extends a partial embedding `M` one element at a time:
//!
//! * if some unmapped query edge has both endpoints mapped, it is matched
//!   next — its candidate set `EC_M(e)` (Definition V.2) is the alive
//!   parallel edges between the endpoint images that are in the DCS and
//!   satisfy the temporal constraints against the mapped related edges
//!   `R⁺_M(e)`;
//! * otherwise an unmapped query vertex adjacent to the mapped region is
//!   chosen (SymBi's min-candidate order) and extended over its candidates.
//!
//! Three §V techniques prune the edge-candidate iteration:
//!
//! 1. **Case 1** (`R⁻_M(e) = ∅`): all candidates give isomorphic subtrees —
//!    explore one; on success clone each found embedding onto the remaining
//!    candidates, on failure prune them all.
//! 2. **Case 2** (all of `R⁻_M(e)` on one temporal side of `e`): scan
//!    candidates chronologically (ascending when `e` precedes everything
//!    unmapped, descending otherwise) and stop at the first failure —
//!    later candidates are strictly more constrained.
//! 3. **Case 3** (mixed): *temporal failing sets* `TF_M` (Definition V.3) —
//!    when an explored candidate's subtree fails without `e` in its failing
//!    set, the failure did not involve `e`'s timestamp, so every sibling
//!    candidate fails identically and is pruned.

use crate::config::EngineConfig;
use crate::embedding::EmbeddingArena;
use crate::stats::EngineStats;
use tcsm_dcs::Dcs;
use tcsm_filter::{CandPair, FilterBank};
use tcsm_graph::{
    EdgeKey, QEdgeId, QVertexId, QueryGraph, Set64, TemporalEdge, Ts, VertexId, WindowGraph,
};

/// Result of exploring one search-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// At least one embedding was reported in the subtree.
    Found,
    /// No embedding; the temporal failing set of the node.
    Failed(Set64),
    /// A budget was exhausted; unwind immediately.
    Aborted,
}

/// What the caller just mapped, for the `∪ R⁺_M(e)` term of Definition V.3.
#[derive(Clone, Copy)]
enum Last {
    Edge(QEdgeId),
    Vertex,
}

/// Same-timestamp exclusion context for batched sweeps.
///
/// A delta batch applies every same-timestamp edge to the structures before
/// a single combined sweep runs, so the window already (still) contains
/// batch edges that — under the serial event order — would not be visible
/// to a given seed's `FindMatches` call. Per seed, the sweep excludes:
///
/// * **arrival batches**: batch records with key *greater* than the seed's
///   (serial inserts them after the seed's sweep), so each new embedding is
///   reported exactly once, at its greatest batch edge;
/// * **expiration batches**: batch records with key *smaller* than the
///   seed's (serial removed them before the seed's sweep), so each dying
///   embedding is reported exactly once, at its smallest batch edge.
///
/// Batches are complete per arrival timestamp, so "is a batch record" is an
/// arrival-time comparison.
#[derive(Clone, Copy)]
struct BatchCtx {
    /// Arrival timestamp shared by every edge of the batch.
    time: Ts,
    /// The seed edge currently swept (never excluded itself).
    seed: EdgeKey,
    /// `true` for arrival batches, `false` for expiration batches.
    exclude_later: bool,
}

impl BatchCtx {
    /// Must the record be hidden from this seed's sweep?
    #[inline]
    fn excludes(self, key: EdgeKey, time: Ts) -> bool {
        time == self.time && key != self.seed && ((key > self.seed) == self.exclude_later)
    }
}

/// Search-state buffers that persist across `FindMatches` invocations.
///
/// One stream event spawns one [`Matcher`]; the engine owns this scratch and
/// lends it out, so the per-event cost is a handful of `fill`s instead of
/// five allocations plus a fresh candidate `Vec` per search-tree node. The
/// pools hold candidate buffers recycled across recursion depths. Under the
/// parallel runtime each worker lane owns one `MatcherScratch`, so fanned-
/// out seeds never share mutable state.
#[derive(Default)]
pub(crate) struct MatcherScratch {
    vmap: Vec<Option<VertexId>>,
    emap: Vec<Option<EdgeKey>>,
    etime: Vec<Ts>,
    used_vertices: Vec<VertexId>,
    /// Collected embeddings, flat in a bump arena (drained/materialized by
    /// the engine after each event — the search path never allocates).
    pub(crate) found: EmbeddingArena,
    /// Recycled edge-candidate buffers, one in flight per recursion depth.
    cand_pool: Vec<Vec<(EdgeKey, Ts)>>,
    /// Recycled vertex-candidate buffers.
    vcand_pool: Vec<Vec<VertexId>>,
}

impl MatcherScratch {
    /// Sizes the mapping buffers for `q` (no-op when already sized).
    fn prepare(&mut self, q: &QueryGraph) {
        let (nv, ne) = (q.num_vertices(), q.num_edges());
        self.vmap.clear();
        self.vmap.resize(nv, None);
        self.emap.clear();
        self.emap.resize(ne, None);
        self.etime.clear();
        self.etime.resize(ne, Ts::ZERO);
        self.used_vertices.clear();
        debug_assert!(self.found.is_empty(), "engine drains found between events");
        self.found.reset(nv, ne);
    }
}

/// One `FindMatches` invocation rooted at an updated data edge.
pub(crate) struct Matcher<'a> {
    q: &'a QueryGraph,
    g: &'a WindowGraph,
    dcs: &'a Dcs,
    bank: &'a FilterBank,
    cfg: &'a EngineConfig,
    /// Partial mapping state + pools, reused across events.
    s: &'a mut MatcherScratch,
    /// Batched-sweep exclusion (None in serial mode).
    batch: Option<BatchCtx>,
    mapped_edges: Set64,
    mapped_vertices: Set64,
    /// Output.
    pub(crate) found_count: u64,
    pub(crate) stats: EngineStats,
    nodes_this_event: u64,
    nodes_before: u64,
}

impl<'a> Matcher<'a> {
    pub(crate) fn new(
        q: &'a QueryGraph,
        g: &'a WindowGraph,
        dcs: &'a Dcs,
        bank: &'a FilterBank,
        cfg: &'a EngineConfig,
        total_nodes_so_far: u64,
        scratch: &'a mut MatcherScratch,
    ) -> Matcher<'a> {
        scratch.prepare(q);
        Matcher {
            q,
            g,
            dcs,
            bank,
            cfg,
            s: scratch,
            batch: None,
            mapped_edges: Set64::EMPTY,
            mapped_vertices: Set64::EMPTY,
            found_count: 0,
            stats: EngineStats::default(),
            nodes_this_event: 0,
            nodes_before: total_nodes_so_far,
        }
    }

    /// Runs the search for every query edge the updated edge can pin
    /// (Algorithm 4, lines 3–7). Returns `false` on budget exhaustion.
    pub(crate) fn run(&mut self, sigma: &TemporalEdge) -> bool {
        for e in 0..self.q.num_edges() {
            for o in [true, false] {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                if !self.bank.contains(pair) {
                    continue;
                }
                let qe = self.q.edge(e);
                let (va, vb) = if o {
                    (sigma.src, sigma.dst)
                } else {
                    (sigma.dst, sigma.src)
                };
                if va == vb {
                    continue;
                }
                if !self.dcs.d2(qe.a, va) || !self.dcs.d2(qe.b, vb) {
                    continue;
                }
                // Pin (e, σ) and search.
                self.map_vertex(qe.a, va);
                self.map_vertex(qe.b, vb);
                self.map_edge(e, sigma.key, sigma.time);
                let out = self.search(Last::Edge(e));
                self.unmap_edge(e);
                self.unmap_vertex(qe.b);
                self.unmap_vertex(qe.a);
                if out == Outcome::Aborted {
                    return false;
                }
            }
        }
        true
    }

    /// One combined sweep over a delta batch: every batch edge seeds the
    /// pinned search in event (= key) order, under the per-seed exclusion
    /// of [`BatchCtx`]. Reproduces exactly the multiset of embeddings the
    /// serial per-event sweeps report. `exclude_later` is `true` for
    /// arrival batches, `false` for expiration batches (where the window
    /// still holds every batch edge). Returns `false` on budget exhaustion.
    pub(crate) fn run_batch(&mut self, seeds: &[TemporalEdge], exclude_later: bool) -> bool {
        debug_assert!(
            seeds.windows(2).all(|w| w[0].key < w[1].key),
            "batch seeds must be in serial (key) order"
        );
        debug_assert!(
            seeds.windows(2).all(|w| w[0].time == w[1].time),
            "batch seeds must share one arrival timestamp"
        );
        // A size-one batch needs no exclusion: batches are complete per
        // arrival timestamp, so no *other* record can share the seed's time
        // — skipping the context keeps uniform streams on the exact serial
        // candidate path.
        let singleton = seeds.len() == 1;
        for sigma in seeds {
            let go = if singleton {
                self.batch = None;
                self.run(sigma)
            } else {
                self.run_seed(sigma, exclude_later)
            };
            if !go {
                return false;
            }
        }
        true
    }

    /// One seed of a (non-singleton) batched sweep: pins the batch-context
    /// exclusion for `sigma` and runs its searches. This is the unit the
    /// parallel runtime fans out — one call per seed, each on its own
    /// [`MatcherScratch`] lane. Returns `false` on budget exhaustion.
    pub(crate) fn run_seed(&mut self, sigma: &TemporalEdge, exclude_later: bool) -> bool {
        self.batch = Some(BatchCtx {
            time: sigma.time,
            seed: sigma.key,
            exclude_later,
        });
        self.run(sigma)
    }

    #[inline]
    fn map_vertex(&mut self, u: QVertexId, v: VertexId) {
        self.s.vmap[u] = Some(v);
        self.mapped_vertices.insert(u);
        self.s.used_vertices.push(v);
    }

    #[inline]
    fn unmap_vertex(&mut self, u: QVertexId) {
        self.s.vmap[u] = None;
        self.mapped_vertices.remove(u);
        self.s.used_vertices.pop();
    }

    #[inline]
    fn map_edge(&mut self, e: QEdgeId, k: EdgeKey, t: Ts) {
        self.s.emap[e] = Some(k);
        self.s.etime[e] = t;
        self.mapped_edges.insert(e);
    }

    #[inline]
    fn unmap_edge(&mut self, e: QEdgeId) {
        self.s.emap[e] = None;
        self.mapped_edges.remove(e);
    }

    #[inline]
    fn vertex_used(&self, v: VertexId) -> bool {
        self.s.used_vertices.contains(&v)
    }

    /// Budget check; `true` means continue.
    fn tick(&mut self) -> bool {
        self.nodes_this_event += 1;
        self.stats.search_nodes += 1;
        let b = &self.cfg.budget;
        if b.max_nodes_per_event != 0 && self.nodes_this_event > b.max_nodes_per_event {
            self.stats.budget_exhausted = true;
            return false;
        }
        if b.max_total_nodes != 0 && self.nodes_before + self.nodes_this_event > b.max_total_nodes {
            self.stats.budget_exhausted = true;
            return false;
        }
        if b.max_matches_per_event != 0 && self.found_count >= b.max_matches_per_event {
            self.stats.budget_exhausted = true;
            return false;
        }
        true
    }

    /// `R⁺_M(e)`: mapped edges temporally related to `e` (Definition V.1).
    #[inline]
    fn r_plus(&self, e: QEdgeId) -> Set64 {
        self.q.order().related_set(e).intersect(self.mapped_edges)
    }

    /// The search-tree recursion. The caller has just applied `last`.
    fn search(&mut self, last: Last) -> Outcome {
        if !self.tick() {
            return Outcome::Aborted;
        }
        let cc = if let Some(e_next) = self.next_pending_edge() {
            self.match_edge(e_next)
        } else if self.mapped_vertices.len() == self.q.num_vertices() {
            debug_assert_eq!(self.mapped_edges.len(), self.q.num_edges());
            self.report();
            return Outcome::Found;
        } else {
            self.extend_vertex()
        };
        match cc {
            Outcome::Failed(mut tf) => {
                if let Last::Edge(e) = last {
                    tf = tf.union(self.r_plus(e));
                }
                Outcome::Failed(tf)
            }
            other => other,
        }
    }

    /// Smallest unmapped query edge whose endpoints are both mapped.
    fn next_pending_edge(&self) -> Option<QEdgeId> {
        for e in 0..self.q.num_edges() {
            if self.mapped_edges.contains(e) {
                continue;
            }
            let qe = self.q.edge(e);
            if self.mapped_vertices.contains(qe.a) && self.mapped_vertices.contains(qe.b) {
                return Some(e);
            }
        }
        None
    }

    /// Emits the current complete mapping.
    fn report(&mut self) {
        if self.cfg.preset.post_check() {
            for (a, b) in self.q.order().pairs() {
                if self.s.etime[a] >= self.s.etime[b] {
                    self.stats.post_check_rejections += 1;
                    return;
                }
            }
        }
        self.found_count += 1;
        if self.cfg.collect_matches {
            self.s.found.push_mapping(&self.s.vmap, &self.s.emap);
        }
    }

    /// Computes `EC_M(e)` in chronological order into `out` (a pooled
    /// buffer — no allocation on the steady-state search path).
    fn fill_candidates(&self, e: QEdgeId, out: &mut Vec<(EdgeKey, Ts)>) {
        let qe = self.q.edge(e);
        let va = self.s.vmap[qe.a].expect("both endpoints of an extendable edge are mapped");
        let vb = self.s.vmap[qe.b].expect("both endpoints of an extendable edge are mapped");
        let Some(bucket) = self.g.pair(va, vb) else {
            return;
        };
        // Temporal bounds from R⁺ (Definition V.2).
        let (mut lo, mut hi) = (Ts::NEG_INF, Ts::INF);
        if self.cfg.preset.temporal_candidates() {
            let order = self.q.order();
            for ep in self.r_plus(e).iter() {
                if order.precedes(ep, e) {
                    lo = lo.max(self.s.etime[ep]);
                } else {
                    hi = hi.min(self.s.etime[ep]);
                }
            }
        }
        for rec in bucket.iter() {
            if !(lo < rec.time && rec.time < hi) {
                continue;
            }
            // Batched sweeps hide same-timestamp records the serial event
            // order would not have made visible to this seed.
            if self.batch.is_some_and(|b| b.excludes(rec.key, rec.time)) {
                continue;
            }
            // DCS membership of the oriented pair.
            let src = if rec.src_is_a { bucket.a } else { bucket.b };
            let pair = CandPair {
                qedge: e,
                key: rec.key,
                a_to_src: va == src,
            };
            if self.bank.contains(pair) {
                out.push((rec.key, rec.time));
            }
        }
    }

    /// Matches the pending edge `e` over its candidates, with §V pruning.
    fn match_edge(&mut self, e: QEdgeId) -> Outcome {
        let mut ec = self.s.cand_pool.pop().unwrap_or_default();
        debug_assert!(ec.is_empty());
        self.fill_candidates(e, &mut ec);
        let out = self.match_edge_with(e, &ec);
        ec.clear();
        self.s.cand_pool.push(ec);
        out
    }

    /// The dispatch over the §V cases, with candidates already computed.
    fn match_edge_with(&mut self, e: QEdgeId, ec: &[(EdgeKey, Ts)]) -> Outcome {
        if ec.is_empty() {
            // Pseudo-leaf (e, ∅): TF = R⁺_M(e) (Definition V.3, case 1).
            return Outcome::Failed(self.r_plus(e));
        }
        let order = self.q.order();
        let related = order.related_set(e);
        let r_minus = related.difference(self.mapped_edges);
        let flags = self.cfg.pruning_flags();
        let pruning = flags.case3;

        // Case 1: no unmapped related edges — candidates interchangeable.
        if flags.case1 && r_minus.is_empty() {
            return self.match_edge_case1(e, ec);
        }
        // Case 2: uniform relationship — chronological scan, break on fail.
        if flags.case2 && !r_minus.is_empty() {
            if r_minus.is_subset_of(order.successors(e)) {
                return self.match_edge_case2(e, ec, false);
            }
            if r_minus.is_subset_of(order.predecessors(e)) {
                return self.match_edge_case2(e, ec, true);
            }
        }
        // Case 3 / pruning disabled: plain scan, failing-set pruning when on.
        let mut any_found = false;
        let mut tf_children = Set64::EMPTY;
        for (i, &(k, t)) in ec.iter().enumerate() {
            self.map_edge(e, k, t);
            let out = self.search(Last::Edge(e));
            self.unmap_edge(e);
            match out {
                Outcome::Aborted => return Outcome::Aborted,
                Outcome::Found => any_found = true,
                Outcome::Failed(tf) => {
                    if pruning && !tf.contains(e) && !any_found {
                        // Definition V.3 case 2.1: failure independent of
                        // e's timestamp — siblings cannot do better.
                        self.stats.pruned_case3 += (ec.len() - i - 1) as u64;
                        return Outcome::Failed(tf);
                    }
                    tf_children = tf_children.union(tf);
                }
            }
        }
        if any_found {
            Outcome::Found
        } else {
            Outcome::Failed(tf_children)
        }
    }

    /// Case 1: explore one candidate; clone successes / prune failures.
    fn match_edge_case1(&mut self, e: QEdgeId, ec: &[(EdgeKey, Ts)]) -> Outcome {
        let (k0, t0) = ec[0];
        let sink_start = self.s.found.len();
        let count_start = self.found_count;
        self.map_edge(e, k0, t0);
        let out = self.search(Last::Edge(e));
        self.unmap_edge(e);
        match out {
            Outcome::Aborted => Outcome::Aborted,
            Outcome::Failed(tf) => {
                self.stats.pruned_case1 += (ec.len() - 1) as u64;
                Outcome::Failed(tf)
            }
            Outcome::Found => {
                let produced = self.found_count - count_start;
                let clones = produced * (ec.len() as u64 - 1);
                self.found_count += clones;
                self.stats.cloned_case1 += clones;
                if self.cfg.collect_matches {
                    let sink_end = self.s.found.len();
                    for &(k, _) in &ec[1..] {
                        for i in sink_start..sink_end {
                            self.s.found.push_clone_with_edge(i, e, k);
                        }
                    }
                }
                Outcome::Found
            }
        }
    }

    /// Case 2: chronological scan (`descending` when every unmapped related
    /// edge precedes `e`); stop at the first failed candidate.
    fn match_edge_case2(&mut self, e: QEdgeId, ec: &[(EdgeKey, Ts)], descending: bool) -> Outcome {
        let mut any_found = false;
        let mut tf_children = Set64::EMPTY;
        let n = ec.len();
        for i in 0..n {
            let (k, t) = if descending { ec[n - 1 - i] } else { ec[i] };
            self.map_edge(e, k, t);
            let out = self.search(Last::Edge(e));
            self.unmap_edge(e);
            match out {
                Outcome::Aborted => return Outcome::Aborted,
                Outcome::Found => any_found = true,
                Outcome::Failed(tf) => {
                    // Every later candidate is strictly more constrained;
                    // its subtree fails too (see the Case-2 soundness
                    // argument in the module docs / DESIGN.md).
                    self.stats.pruned_case2 += (n - i - 1) as u64;
                    tf_children = tf_children.union(tf);
                    break;
                }
            }
        }
        if any_found {
            Outcome::Found
        } else {
            Outcome::Failed(tf_children)
        }
    }

    /// Vertex extension: SymBi-style adaptive order (minimum candidates).
    fn extend_vertex(&mut self) -> Outcome {
        let mut best_cand = self.s.vcand_pool.pop().unwrap_or_default();
        let mut trial = self.s.vcand_pool.pop().unwrap_or_default();
        debug_assert!(best_cand.is_empty() && trial.is_empty());
        // Extendable vertices: unmapped with at least one mapped neighbour.
        let mut best_u: Option<QVertexId> = None;
        for u in 0..self.q.num_vertices() {
            if self.mapped_vertices.contains(u) {
                continue;
            }
            if !self
                .q
                .incident_edges(u)
                .iter()
                .any(|&(_, w)| self.mapped_vertices.contains(w))
            {
                continue;
            }
            trial.clear();
            self.fill_vertex_candidates(u, &mut trial);
            let better = best_u.is_none() || trial.len() < best_cand.len();
            if better {
                std::mem::swap(&mut best_cand, &mut trial);
                best_u = Some(u);
                if best_cand.is_empty() {
                    break;
                }
            }
        }
        let out = match best_u {
            // Unreachable for connected queries, but stay safe; an empty
            // candidate set is a structural failure — no timestamps
            // involved (DESIGN.md §4).
            None => Outcome::Failed(Set64::EMPTY),
            Some(_) if best_cand.is_empty() => Outcome::Failed(Set64::EMPTY),
            Some(u) => {
                let mut any_found = false;
                let mut tf_children = Set64::EMPTY;
                let mut aborted = false;
                // Indexed loop: `best_cand` must stay owned while `self` is
                // mutably borrowed by the recursion.
                #[allow(clippy::needless_range_loop)]
                for i in 0..best_cand.len() {
                    let v = best_cand[i];
                    self.map_vertex(u, v);
                    let out = self.search(Last::Vertex);
                    self.unmap_vertex(u);
                    match out {
                        Outcome::Aborted => {
                            aborted = true;
                            break;
                        }
                        Outcome::Found => any_found = true,
                        Outcome::Failed(tf) => tf_children = tf_children.union(tf),
                    }
                }
                if aborted {
                    Outcome::Aborted
                } else if any_found {
                    Outcome::Found
                } else {
                    Outcome::Failed(tf_children)
                }
            }
        };
        best_cand.clear();
        trial.clear();
        self.s.vcand_pool.push(best_cand);
        self.s.vcand_pool.push(trial);
        out
    }

    /// DCS edge support of candidate `v` for query edge `e` towards the
    /// mapped image `img_w`, read straight off the bucket id (`tail(e) ≠ u`
    /// means the mapped endpoint is the DAG tail).
    #[inline]
    fn edge_supported(
        &self,
        e: QEdgeId,
        u: QVertexId,
        img_w: VertexId,
        v: VertexId,
        pid: tcsm_graph::PairId,
    ) -> bool {
        let tail_lt_head = if self.dcs.dag().tail(e) == u {
            v < img_w
        } else {
            img_w < v
        };
        self.dcs.mult_at(pid, e, tail_lt_head) > 0
    }

    /// `C_M(u)`: structural candidates of `u` (label, `d2`, injectivity, and
    /// DCS edge support towards every mapped neighbour), written into a
    /// pooled buffer. Temporal checks are deferred to the edge nodes so
    /// failing sets stay sound.
    ///
    /// The window hands out stable pair-bucket ids, and every vertex's
    /// `(neighbour, id)` array is sorted, so support checks are pure array
    /// walks: the pivot's array seeds the candidates (checking the pivot
    /// edge's DCS row by id), and each further mapped neighbour prunes them
    /// with one two-pointer merge — no per-candidate `(v, w) → PairId`
    /// binary searches. A drained (dying) bucket's multiplicities are all
    /// zero, so stale adjacency entries reject themselves.
    fn fill_vertex_candidates(&self, u: QVertexId, out: &mut Vec<VertexId>) {
        // Pivot: the mapped neighbour with the smallest alive neighbourhood.
        let mut pivot: Option<(QEdgeId, VertexId, usize)> = None;
        for &(e, w) in self.q.incident_edges(u) {
            if let Some(img) = self
                .mapped_vertices
                .contains(w)
                .then(|| self.s.vmap[w].expect("mapped_vertices bit implies a vmap entry"))
            {
                let n = self.g.num_neighbors(img);
                if pivot.is_none_or(|(_, _, pn)| n < pn) {
                    pivot = Some((e, img, n));
                }
            }
        }
        let (pivot_e, pivot_img, _) = pivot.expect("extendable vertex has a mapped neighbour");
        for &(v, pid) in self.g.neighbor_entries(pivot_img) {
            // `d2 ⊆ label-match` (Dcs::refresh_node gates d1 — and hence d2
            // — on label compatibility), so the old per-candidate label
            // probe was redundant: the d2 bitmap test subsumes it and is
            // the more selective gate, so it runs first.
            if !self.dcs.d2(u, v) || self.vertex_used(v) {
                continue;
            }
            debug_assert_eq!(self.g.label(v), self.q.label(u), "d2 outside label match");
            if self.edge_supported(pivot_e, u, pivot_img, v, pid) {
                out.push(v);
            }
        }
        // Intersect with the DCS rows of every other mapped neighbour:
        // `out` and the neighbour arrays are both ascending, so each pass
        // is one linear merge.
        for &(e, w) in self.q.incident_edges(u) {
            if e == pivot_e || !self.mapped_vertices.contains(w) {
                continue;
            }
            if out.is_empty() {
                return;
            }
            let img_w = self.s.vmap[w].expect("mapped_vertices bit implies a vmap entry");
            let entries = self.g.neighbor_entries(img_w);
            let mut cursor = 0usize;
            let mut keep = 0usize;
            for idx in 0..out.len() {
                let v = out[idx];
                while cursor < entries.len() && entries[cursor].0 < v {
                    cursor += 1;
                }
                if cursor < entries.len()
                    && entries[cursor].0 == v
                    && self.edge_supported(e, u, img_w, v, entries[cursor].1)
                {
                    out[keep] = v;
                    keep += 1;
                }
            }
            out.truncate(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgorithmPreset;
    use crate::engine::TcmEngine;
    use crate::{Embedding, MatchKind};
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraph, TemporalGraphBuilder};

    /// Figure 2a with the labels of the running example.
    fn figure_2a() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let labels = [0u32, 1, 5, 2, 3, 5, 4];
        let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
        b.edge(v[0], v[1], 1);
        b.edge(v[3], v[4], 2);
        b.edge(v[3], v[4], 3);
        b.edge(v[0], v[3], 4);
        b.edge(v[3], v[6], 5);
        b.edge(v[0], v[1], 6);
        b.edge(v[3], v[6], 7);
        b.edge(v[0], v[3], 8);
        b.edge(v[4], v[6], 9);
        b.edge(v[4], v[6], 10);
        b.edge(v[1], v[4], 11);
        b.edge(v[0], v[3], 12);
        b.edge(v[3], v[4], 13);
        b.edge(v[3], v[6], 14);
        b.build().unwrap()
    }

    #[test]
    fn running_example_example_ii_2() {
        // δ = 10: at t = 14 the paper's embedding (ε5 ↦ σ10) occurs — and
        // only its ε5 ↦ σ9 sibling besides; the σ1 variants are dead
        // (σ1 expired at t = 11).
        let q = paper_running_example();
        let g = figure_2a();
        let mut engine = TcmEngine::new(&q, &g, 10, Default::default()).unwrap();
        let events = engine.run();
        let mut at_14: Vec<Vec<i64>> = events
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred && m.at == Ts::new(14))
            .inspect(|m| assert!(m.embedding.verify(&q, &g)))
            .map(|m| m.embedding.edge_times(&g).iter().map(|t| t.raw()).collect())
            .collect();
        at_14.sort();
        assert_eq!(
            at_14,
            vec![vec![6, 8, 11, 13, 9, 14], vec![6, 8, 11, 13, 10, 14]]
        );
    }

    #[test]
    fn all_reported_embeddings_are_valid_and_expire() {
        let q = paper_running_example();
        let g = figure_2a();
        for preset in [
            AlgorithmPreset::Tcm,
            AlgorithmPreset::TcmNoPruning,
            AlgorithmPreset::TcmNoFilter,
            AlgorithmPreset::SymBiPostCheck,
        ] {
            let cfg = EngineConfig {
                preset,
                ..Default::default()
            };
            let mut engine = TcmEngine::new(&q, &g, 10, cfg).unwrap();
            let events = engine.run();
            for ev in &events {
                assert!(
                    ev.embedding.verify(&q, &g),
                    "invalid embedding ({preset:?})"
                );
            }
            // Stream fully drains, so every occurrence later expires.
            let occ = events
                .iter()
                .filter(|m| m.kind == MatchKind::Occurred)
                .count();
            let exp = events
                .iter()
                .filter(|m| m.kind == MatchKind::Expired)
                .count();
            assert_eq!(occ, exp, "occurred/expired mismatch ({preset:?})");
        }
    }

    #[test]
    fn presets_agree_on_match_sets() {
        // All four variants are the same semantics — only performance
        // differs — so their occurred-match multisets must coincide.
        let q = paper_running_example();
        let g = figure_2a();
        let mut reference: Option<Vec<Embedding>> = None;
        for preset in [
            AlgorithmPreset::Tcm,
            AlgorithmPreset::TcmNoPruning,
            AlgorithmPreset::TcmNoFilter,
            AlgorithmPreset::SymBiPostCheck,
        ] {
            let cfg = EngineConfig {
                preset,
                ..Default::default()
            };
            let mut engine = TcmEngine::new(&q, &g, 10, cfg).unwrap();
            let mut occ: Vec<Embedding> = engine
                .run()
                .into_iter()
                .filter(|m| m.kind == MatchKind::Occurred)
                .map(|m| m.embedding)
                .collect();
            occ.sort();
            match &reference {
                None => reference = Some(occ),
                Some(r) => assert_eq!(r, &occ, "preset {preset:?} diverged"),
            }
        }
        assert!(!reference.unwrap().is_empty());
    }

    #[test]
    fn single_edge_query() {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(1);
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let mut gb = TemporalGraphBuilder::new();
        let v0 = gb.vertex(0);
        let v1 = gb.vertex(1);
        gb.edge(v0, v1, 1);
        gb.edge(v0, v1, 2);
        let g = gb.build().unwrap();
        let mut engine = TcmEngine::new(&q, &g, 10, Default::default()).unwrap();
        let events = engine.run();
        let occ = events
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred)
            .count();
        assert_eq!(occ, 2);
    }

    #[test]
    fn budget_abort_is_reported() {
        let q = paper_running_example();
        let g = figure_2a();
        let cfg = EngineConfig {
            budget: crate::SearchBudget {
                max_total_nodes: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = TcmEngine::new(&q, &g, 10, cfg).unwrap();
        let _ = engine.run();
        assert!(engine.stats().budget_exhausted);
    }

    #[test]
    fn triangle_query_with_total_order() {
        // Triangle query e0 ≺ e1 ≺ e2 over a data triangle with two parallel
        // edges per side; count = number of time-respecting side choices.
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(0);
        let c = qb.vertex(0);
        let e0 = qb.edge(a, b);
        let e1 = qb.edge(b, c);
        let e2 = qb.edge(c, a);
        qb.precede(e0, e1).precede(e1, e2);
        let q = qb.build().unwrap();

        let mut gb = TemporalGraphBuilder::new();
        let v0 = gb.vertex(0);
        let v1 = gb.vertex(0);
        let v2 = gb.vertex(0);
        gb.edge(v0, v1, 1);
        gb.edge(v0, v1, 4);
        gb.edge(v1, v2, 2);
        gb.edge(v1, v2, 5);
        gb.edge(v2, v0, 3);
        gb.edge(v2, v0, 6);
        let g = gb.build().unwrap();

        let mut engine = TcmEngine::new(&q, &g, 100, Default::default()).unwrap();
        let events = engine.run();
        let occ: Vec<_> = events
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred)
            .collect();
        // Count by hand: map (e0,e1,e2) onto sides in any rotation/reflection
        // with strictly increasing times. Rotations of (v0v1, v1v2, v2v0):
        // (1,2,3) (1,2,6) (1,5,6) (4,5,6) (2,3,4)? — sides fixed per
        // rotation; enumerate: rotation A=(01,12,20): times {1,4}×{2,5}×{3,6}
        // increasing: (1,2,3),(1,2,6),(1,5,6),(4,5,6) = 4.
        // rotation B=(12,20,01): {2,5}×{3,6}×{1,4}: (2,3,4),(2,6,?>6 none),
        // (5,6,?) none ⇒ 1... plus (2,3,4) only = 1? (5,6,>6) no. ⇒ 1.
        // rotation C=(20,01,12): {3,6}×{1,4}×{2,5}: (3,4,5) = 1.
        // reflections (reverse direction): A'=(01,20,12): {1,4}×{3,6}×{2,5}:
        // (1,3,5),(4,6,?) no ⇒ 1... (1,6,?) no ⇒ 1. Hmm (1,3,5) ✓.
        // B'=(12,01,20): {2,5}×{1,4}×{3,6}: (2,4,6) = 1.
        // C'=(20,12,01): {3,6}×{2,5}×{1,4}: (3,5,?>5∈{1,4}) no ⇒ 0.
        // Total = 4+1+1+1+1+0 = 8.
        assert_eq!(occ.len(), 8);
        for ev in occ {
            assert!(ev.embedding.verify(&q, &g));
        }
    }
}
