//! The per-query matching runtime over a **borrowed** window.
//!
//! [`QueryRuntime`] is everything of one standing query's pipeline that is
//! *not* the stream state: the query and its DAG, the max-min filter bank,
//! the DCS, the backtracking matcher's scratch, and the per-query
//! [`EngineStats`]. It never owns a [`WindowGraph`] — every method borrows
//! the window of whoever drives it, so several runtimes can observe the
//! same insert/expire deltas of **one shared window**:
//!
//! * [`crate::TcmEngine`] owns one window, one event queue, and one
//!   runtime — the classic single-query engine, now a thin shell;
//! * `tcsm-service`'s `MatchService` owns one window *per shard* and fans
//!   each stream delta out to all runtimes resident on that shard.
//!
//! # Aliasing rules (what sharing a window requires)
//!
//! The runtime reads the window but never mutates it; the owner applies
//! each stream delta to the window exactly once and then lets every
//! runtime process it. The required interleaving mirrors the serial
//! Algorithm 1:
//!
//! * **arrivals**: mutate the window first, then call
//!   [`QueryRuntime::apply_insert`] (or the batch form) on each runtime —
//!   the filter/DCS update and the `FindMatches` sweep both expect the
//!   window to already contain the batch;
//! * **expirations**: call [`QueryRuntime::sweep_expiring`] (or the batch
//!   form) on each runtime *before* mutating the window (expiring
//!   embeddings are enumerated while the structures still admit every
//!   expiring edge), then mutate, then call
//!   [`QueryRuntime::apply_delete`]/`..._batch` on each runtime.
//!
//! The window's deferred bucket reclamation makes this sound for any
//! number of readers: ids of buckets drained by the current event/batch
//! stay resolvable until the owner opens the *next* one, so every
//! runtime's removal deltas stay index-addressed no matter how late in the
//! fan-out it runs.
//!
//! # Mid-stream admission
//!
//! [`QueryRuntime::sync_to_window`] re-derives the filter tables, the pair
//! membership, and the DCS from a window that is already populated (one
//! from-scratch rebuild, never on the per-event path). After it, the
//! runtime is byte-for-byte indistinguishable — match stream and semantic
//! stats alike — from one that observed every alive edge's arrival, which
//! is what lets `MatchService` admit queries while the stream runs.

use crate::config::EngineConfig;
use crate::embedding::{EmbeddingArena, MatchEvent, MatchKind};
use crate::matcher::{Matcher, MatcherScratch};
use crate::pool::WorkerPool;
use crate::stats::EngineStats;
use std::sync::Arc;
use tcsm_dag::{build_best_dag, QueryDag};
use tcsm_dcs::Dcs;
use tcsm_filter::FilterBank;
use tcsm_graph::codec::{CodecError, Decoder, Encoder};
use tcsm_graph::{EdgeKey, QueryGraph, TemporalEdge, Ts, WindowGraph};
use tcsm_telemetry::{Clock, Phase, PhaseRecorder, TraceLevel};

/// Where one fanned-out sweep seed parks its results until the seed-order
/// merge on lane 0.
#[derive(Default)]
struct SeedSlot {
    /// The seed's embeddings (arena swapped out of the lane scratch).
    found: EmbeddingArena,
    /// The seed's matcher counters.
    stats: EngineStats,
    found_count: u64,
}

/// What a `FindMatches` sweep is seeded by.
enum Sweep<'e> {
    /// One updated edge (the serial regime).
    Edge(&'e TemporalEdge),
    /// A whole delta batch, with the arrival/expiration exclusion flag.
    Batch(&'e [TemporalEdge], bool),
}

/// One standing query's full matching pipeline over a borrowed window
/// (see the module docs for the sharing contract).
pub struct QueryRuntime {
    q: QueryGraph,
    dag: QueryDag,
    bank: FilterBank,
    dcs: Dcs,
    /// Window length δ (fixes each expired embedding's report instant).
    delta: i64,
    cfg: EngineConfig,
    stats: EngineStats,
    deltas_scratch: Vec<tcsm_filter::DcsDelta>,
    /// Search-state buffers reused by every `FindMatches` call.
    matcher_scratch: MatcherScratch,
    /// The intra-query worker pool (`None` = fully serial runtime). Shared
    /// with the filter bank (instance updates) and the batched sweeps.
    pool: Option<Arc<WorkerPool>>,
    /// One matcher scratch per pool lane for fanned-out sweeps (lane 0 is
    /// the caller); pooled and reused across events.
    lane_scratch: Vec<MatcherScratch>,
    /// Per-seed result slots of fanned-out sweeps (reused across batches);
    /// merged in seed order so the match stream stays byte-identical.
    seed_slots: Vec<SeedSlot>,
    /// Per-phase latency recorder (`TCSM_TRACE`-selected; a single branch
    /// per phase when off). Timing lives here, **never** in `stats` — the
    /// semantic counters and snapshot bytes stay identical at every level.
    recorder: PhaseRecorder,
}

impl QueryRuntime {
    /// Builds the runtime for `q` against `window`'s fixed vertex set with
    /// window length `delta`. The window may belong to anyone; if it is
    /// already populated, follow up with [`QueryRuntime::sync_to_window`].
    /// With `pool` set, the filter fan-out and batched sweeps run on it
    /// (the pool must be driven from this runtime's thread only).
    pub fn new(
        q: &QueryGraph,
        window: &WindowGraph,
        delta: i64,
        cfg: EngineConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> QueryRuntime {
        let dag = build_best_dag(q);
        let mut bank = FilterBank::new(q, &dag, cfg.preset.filter_mode(), window);
        if let Some(pool) = &pool {
            bank.set_exec(Some(Arc::clone(pool) as Arc<dyn tcsm_filter::Exec>));
        }
        let dcs = Dcs::new(dag.clone(), q, window);
        QueryRuntime {
            q: q.clone(),
            dag,
            bank,
            dcs,
            delta,
            cfg,
            stats: EngineStats::default(),
            deltas_scratch: Vec::new(),
            matcher_scratch: MatcherScratch::default(),
            pool,
            lane_scratch: Vec::new(),
            seed_slots: Vec::new(),
            recorder: PhaseRecorder::from_env(),
        }
    }

    /// Re-derives the bank and DCS from a window that already holds alive
    /// edges — mid-stream admission. One from-scratch rebuild; after it the
    /// runtime behaves exactly as if it had processed every prior arrival
    /// (stats stay zeroed: the query was not resident for those events).
    pub fn sync_to_window<'a>(
        &mut self,
        window: &WindowGraph,
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge + Copy,
    ) {
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        self.bank.rebuild_from_window(
            &self.q,
            window,
            window
                .buckets()
                .flat_map(|b| b.iter().map(|r| lookup(r.key))),
            &mut deltas,
        );
        self.dcs = Dcs::new(self.dag.clone(), &self.q, window);
        self.dcs.apply(&self.q, window, lookup, &deltas);
        self.deltas_scratch = deltas;
    }

    /// The query this runtime matches.
    #[inline]
    pub fn query(&self) -> &QueryGraph {
        &self.q
    }

    /// The query DAG chosen by the greedy builder.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// The effective engine configuration.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Overrides the Eq. (1) kernel on every filter instance (tests and
    /// interleaved benches; production selection is `TCSM_KERNEL`).
    #[doc(hidden)]
    pub fn set_kernel(&mut self, kern: tcsm_filter::KernelKind) {
        self.bank.set_kernel(kern);
    }

    /// The per-phase latency recorder (empty unless `TCSM_TRACE` — or a
    /// [`QueryRuntime::set_trace`] override — enabled it). This is the
    /// aggregation seam: `tcsm-service` merges these histograms into its
    /// per-shard and per-service rollups.
    #[inline]
    pub fn telemetry(&self) -> &PhaseRecorder {
        &self.recorder
    }

    /// Mutable recorder access (subscriber registration, threshold
    /// overrides, and the owner recording owner-side phases — the engine
    /// books its queue-pop spans here so per-query phase totals stay
    /// coherent with one wall clock).
    #[inline]
    pub fn telemetry_mut(&mut self) -> &mut PhaseRecorder {
        &mut self.recorder
    }

    /// Replaces the recorder with one at `level` reading `clock` —
    /// deterministic-clock tests and the interleaved trace benches
    /// (production selection is `TCSM_TRACE`).
    #[doc(hidden)]
    pub fn set_trace(&mut self, level: TraceLevel, clock: Arc<dyn Clock>) {
        self.recorder = PhaseRecorder::with_clock(level, clock);
    }

    /// Current number of DCS edge pairs (Table V's "edges in DCS").
    #[inline]
    pub fn dcs_edges(&self) -> usize {
        self.bank.num_pairs()
    }

    /// Current number of `d2` candidate vertices (Table V's second metric).
    #[inline]
    pub fn dcs_vertices(&self) -> usize {
        self.dcs.num_candidate_vertices()
    }

    /// Has a total search budget been exhausted? Once true the owner must
    /// stop feeding this runtime (the standalone engine stops stepping; the
    /// service skips the query), matching the paper's "unsolved" outcome.
    #[inline]
    pub fn done(&self) -> bool {
        self.stats.budget_exhausted
    }

    /// One edge arrival. `window` must already contain `edge`.
    pub fn apply_insert<'a>(
        &mut self,
        window: &WindowGraph,
        edge: &TemporalEdge,
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<MatchEvent>,
    ) {
        self.stats.events += 1;
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        let t = self.recorder.start();
        self.bank
            .on_insert(&self.q, window, edge, &lookup, &mut deltas);
        self.recorder.stop(Phase::Filter, t);
        let t = self.recorder.start();
        self.dcs.apply(&self.q, window, &lookup, &deltas);
        self.recorder.stop(Phase::DcsApply, t);
        self.deltas_scratch = deltas;
        self.find_matches_sweep(window, Sweep::Edge(edge), MatchKind::Occurred, out);
        self.sample_dcs(1);
    }

    /// The expiring-embedding sweep of one edge expiration. Must run while
    /// `window` still contains `edge` (before the owner removes it).
    pub fn sweep_expiring(
        &mut self,
        window: &WindowGraph,
        edge: &TemporalEdge,
        out: &mut Vec<MatchEvent>,
    ) {
        self.find_matches_sweep(window, Sweep::Edge(edge), MatchKind::Expired, out);
    }

    /// The structure update of one edge expiration. `window` must no longer
    /// contain `edge` (but its pair id must still resolve — the window's
    /// deferred reclamation guarantees this until the next mutation).
    pub fn apply_delete<'a>(
        &mut self,
        window: &WindowGraph,
        edge: &TemporalEdge,
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
    ) {
        self.stats.events += 1;
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        let t = self.recorder.start();
        self.bank
            .on_delete(&self.q, window, edge, &lookup, &mut deltas);
        self.recorder.stop(Phase::Filter, t);
        let t = self.recorder.start();
        self.dcs.apply(&self.q, window, &lookup, &deltas);
        self.recorder.stop(Phase::DcsApply, t);
        self.deltas_scratch = deltas;
        self.sample_dcs(1);
    }

    /// One same-timestamp arrival batch. `window` must already contain
    /// every batch edge; `edges` must be the complete batch in key order.
    /// Singleton batches dispatch to the serial handlers (identical
    /// semantics, none of the batch bookkeeping).
    pub fn apply_insert_batch<'a>(
        &mut self,
        window: &WindowGraph,
        edges: &[TemporalEdge],
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<MatchEvent>,
    ) {
        self.stats.events += edges.len() as u64;
        self.stats.batches += 1;
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        let t = self.recorder.start();
        if let [e] = edges[..] {
            self.bank
                .on_insert(&self.q, window, &e, &lookup, &mut deltas);
        } else {
            self.bank
                .on_insert_batch(&self.q, window, edges, &lookup, &mut deltas);
        }
        self.recorder.stop(Phase::Filter, t);
        let t = self.recorder.start();
        self.dcs.apply(&self.q, window, &lookup, &deltas);
        self.recorder.stop(Phase::DcsApply, t);
        self.deltas_scratch = deltas;
        let sweep = match edges {
            [e] => Sweep::Edge(e),
            _ => Sweep::Batch(edges, true),
        };
        self.find_matches_sweep(window, sweep, MatchKind::Occurred, out);
        self.sample_dcs(edges.len() as u64);
    }

    /// The expiring-embedding sweep of one expiration batch; must run while
    /// `window` still contains every batch edge.
    pub fn sweep_expiring_batch(
        &mut self,
        window: &WindowGraph,
        edges: &[TemporalEdge],
        out: &mut Vec<MatchEvent>,
    ) {
        let sweep = match edges {
            [e] => Sweep::Edge(e),
            _ => Sweep::Batch(edges, false),
        };
        self.find_matches_sweep(window, sweep, MatchKind::Expired, out);
    }

    /// The structure update of one expiration batch. `window` must no
    /// longer contain any batch edge (ids still resolvable, as above).
    pub fn apply_delete_batch<'a>(
        &mut self,
        window: &WindowGraph,
        edges: &[TemporalEdge],
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
    ) {
        self.stats.events += edges.len() as u64;
        self.stats.batches += 1;
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        let t = self.recorder.start();
        if let [e] = edges[..] {
            self.bank
                .on_delete(&self.q, window, &e, &lookup, &mut deltas);
        } else {
            self.bank
                .on_delete_batch(&self.q, window, edges, &lookup, &mut deltas);
        }
        self.recorder.stop(Phase::Filter, t);
        let t = self.recorder.start();
        self.dcs.apply(&self.q, window, &lookup, &deltas);
        self.recorder.stop(Phase::DcsApply, t);
        self.deltas_scratch = deltas;
        self.sample_dcs(edges.len() as u64);
    }

    /// Samples the post-event DCS sizes, weighted by the number of events
    /// the unit covered (1 serially; the batch length in batched mode, so
    /// averages stay comparable to per-event sampling on uniform streams).
    fn sample_dcs(&mut self, weight: u64) {
        let de = self.bank.num_pairs() as u64;
        let dv = self.dcs.num_candidate_vertices() as u64;
        self.stats.peak_dcs_edges = self.stats.peak_dcs_edges.max(de);
        self.stats.sum_dcs_edges += de * weight;
        self.stats.peak_dcs_vertices = self.stats.peak_dcs_vertices.max(dv);
        self.stats.sum_dcs_vertices += dv * weight;
        self.stats.parallel_filter_rounds = self.bank.parallel_rounds();
        let (ki, kl, kx) = self.bank.kernel_counters();
        self.stats.kernel_invocations = ki;
        self.stats.kernel_lanes = kl;
        self.stats.kernel_early_exits = kx;
    }

    /// Timed shell around the sweep body: one [`Phase::Sweep`] span per
    /// `FindMatches` invocation, occurred and expired alike.
    fn find_matches_sweep(
        &mut self,
        window: &WindowGraph,
        sweep: Sweep<'_>,
        kind: MatchKind,
        out: &mut Vec<MatchEvent>,
    ) {
        let t = self.recorder.start();
        self.find_matches_sweep_inner(window, sweep, kind, out);
        self.recorder.stop(Phase::Sweep, t);
    }

    fn find_matches_sweep_inner(
        &mut self,
        window: &WindowGraph,
        sweep: Sweep<'_>,
        kind: MatchKind,
        out: &mut Vec<MatchEvent>,
    ) {
        let arrival = match &sweep {
            Sweep::Edge(e) => e.time,
            Sweep::Batch(edges, _) => match edges.first() {
                Some(e) => e.time,
                None => return,
            },
        };
        // A multi-seed sweep fans out across the pool when budgets permit
        // (budgeted runs keep one serial cursor so exhaustion points are
        // exact — see `EngineConfig::budget_limited`).
        if let Sweep::Batch(edges, exclude_later) = sweep {
            if edges.len() > 1 && !self.cfg.budget_limited() {
                if let Some(pool) = self.pool.clone() {
                    self.sweep_parallel(window, &pool, edges, exclude_later, kind, arrival, out);
                    return;
                }
            }
        }
        let mut scratch = std::mem::take(&mut self.matcher_scratch);
        let (s, found_count) = {
            let mut m = Matcher::new(
                &self.q,
                window,
                &self.dcs,
                &self.bank,
                &self.cfg,
                self.stats.search_nodes,
                &mut scratch,
            );
            match sweep {
                Sweep::Edge(edge) => {
                    m.run(edge);
                }
                Sweep::Batch(edges, exclude_later) => {
                    m.run_batch(edges, exclude_later);
                }
            }
            (m.stats, m.found_count)
        };
        self.merge_matcher_stats(&s, found_count, kind);
        self.drain_found(&mut scratch.found, kind, arrival, out);
        self.matcher_scratch = scratch;
    }

    /// Fans the per-seed searches of one delta batch out across the pool:
    /// every seed runs on some lane with that lane's private scratch, parks
    /// its results in its own [`SeedSlot`], and lane 0 merges the slots in
    /// seed (= key = serial event) order afterwards — so the reported match
    /// stream is byte-identical to the serial sweep at any pool width.
    #[allow(clippy::too_many_arguments)]
    fn sweep_parallel(
        &mut self,
        window: &WindowGraph,
        pool: &WorkerPool,
        seeds: &[TemporalEdge],
        exclude_later: bool,
        kind: MatchKind,
        arrival: Ts,
        out: &mut Vec<MatchEvent>,
    ) {
        let width = pool.width();
        let mut lanes = std::mem::take(&mut self.lane_scratch);
        lanes.resize_with(width, MatcherScratch::default);
        let mut slots = std::mem::take(&mut self.seed_slots);
        if slots.len() < seeds.len() {
            slots.resize_with(seeds.len(), SeedSlot::default);
        }
        let (q, dcs, bank, cfg) = (&self.q, &self.dcs, &self.bank, &self.cfg);
        pool.for_each_with(&mut slots[..seeds.len()], &mut lanes, |i, slot, scratch| {
            let mut m = Matcher::new(q, window, dcs, bank, cfg, 0, scratch);
            m.run_seed(&seeds[i], exclude_later);
            slot.stats = m.stats;
            slot.found_count = m.found_count;
            // Park the seed's embeddings in its slot; the lane keeps the
            // slot's previous (cleared) arena for its next seed.
            slot.found.clear();
            std::mem::swap(&mut slot.found, &mut scratch.found);
        });
        self.lane_scratch = lanes;
        for slot in &mut slots[..seeds.len()] {
            let s = slot.stats;
            self.merge_matcher_stats(&s, slot.found_count, kind);
            self.drain_found(&mut slot.found, kind, arrival, out);
        }
        self.seed_slots = slots;
        self.stats.parallel_sweeps += 1;
        self.stats.parallel_sweep_seeds += seeds.len() as u64;
    }

    /// Merges one matcher run's counters into the runtime stats.
    fn merge_matcher_stats(&mut self, s: &EngineStats, found_count: u64, kind: MatchKind) {
        self.stats.search_nodes += s.search_nodes;
        self.stats.pruned_case1 += s.pruned_case1;
        self.stats.pruned_case2 += s.pruned_case2;
        self.stats.pruned_case3 += s.pruned_case3;
        self.stats.cloned_case1 += s.cloned_case1;
        self.stats.post_check_rejections += s.post_check_rejections;
        self.stats.budget_exhausted |= s.budget_exhausted;
        match kind {
            MatchKind::Occurred => self.stats.occurred += found_count,
            MatchKind::Expired => self.stats.expired += found_count,
        }
    }

    /// Materializes an arena's embeddings as match events (collect mode)
    /// and empties it. The per-embedding boxes are allocated here, at the
    /// API boundary, and nowhere on the search path.
    fn drain_found(
        &self,
        found: &mut EmbeddingArena,
        kind: MatchKind,
        arrival: Ts,
        out: &mut Vec<MatchEvent>,
    ) {
        if self.cfg.collect_matches && !found.is_empty() {
            let at = match kind {
                MatchKind::Occurred => arrival,
                MatchKind::Expired => arrival.plus(self.delta),
            };
            out.reserve(found.len());
            for i in 0..found.len() {
                out.push(MatchEvent {
                    kind,
                    at,
                    embedding: found.materialize(i),
                });
            }
        }
        found.clear();
    }

    /// Cross-crate invariant audit of every incremental structure against
    /// the current window, returning the violations found (see
    /// [`tcsm_graph::audit`] for the level contract and the catalogue).
    ///
    /// Beyond delegating to [`FilterBank::audit`] and [`Dcs::audit`], this
    /// is where the two cross-crate invariants neither crate can check
    /// alone live:
    ///
    /// * **Deep** — the DCS multiplicity slab must equal a recount of the
    ///   alive window through the bank membership: for every alive edge,
    ///   query edge and valid orientation, the pair contributes one
    ///   multiplicity to its `(pair bucket, edge, tail < head)` slot iff
    ///   its membership bit is set.
    /// * **Cheap** — the stats conservation laws: `batches ≤ events`,
    ///   `kernel_early_exits ≤ kernel_invocations`, `peak ≤ sum` for both
    ///   DCS size series, `parallel_sweeps ≤ parallel_sweep_seeds`, and
    ///   `expired ≤ occurred` (every expiring embedding occurred first)
    ///   unless a search budget cut occurrence sweeps short.
    pub fn audit<'a>(
        &self,
        window: &WindowGraph,
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
        level: crate::audit::AuditLevel,
    ) -> Vec<crate::audit::AuditViolation> {
        use crate::audit::AuditViolation;
        let mut out = Vec::new();
        if !level.enabled() {
            return out;
        }
        let alive: Vec<&TemporalEdge> = window
            .buckets()
            .flat_map(|b| b.iter().map(|r| lookup(r.key)))
            .collect();
        self.bank.audit(&self.q, window, &alive, level, &mut out);
        self.dcs.audit(&self.q, window, level, &mut out);
        if level.deep() {
            let mut expected: tcsm_graph::FxHashMap<(tcsm_graph::PairId, usize, bool), u32> =
                tcsm_graph::FxHashMap::default();
            for sigma in &alive {
                for e in 0..self.q.num_edges() {
                    for o in tcsm_filter::pair::valid_orientations(&self.q, window, e, sigma) {
                        let pair = tcsm_filter::CandPair {
                            qedge: e,
                            key: sigma.key,
                            a_to_src: o,
                        };
                        if !self.bank.contains(pair) {
                            continue;
                        }
                        let v_tail = pair.image_of(&self.q, sigma, self.dag.tail(e));
                        let v_head = pair.image_of(&self.q, sigma, self.dag.head(e));
                        if let Some(pid) = window.pair_id(v_tail, v_head) {
                            *expected.entry((pid, e, v_tail < v_head)).or_insert(0) += 1;
                        }
                    }
                }
            }
            self.dcs.audit_mult(&expected, &mut out);
        }
        let s = &self.stats;
        let mut law = |name: &str, lhs: u64, rhs: u64| {
            if lhs > rhs {
                out.push(AuditViolation::new(
                    "stats-conservation",
                    format!("{name}: {lhs} > {rhs}"),
                ));
            }
        };
        law("batches <= events", s.batches, s.events);
        law(
            "peak_dcs_edges <= sum_dcs_edges",
            s.peak_dcs_edges,
            s.sum_dcs_edges,
        );
        law(
            "peak_dcs_vertices <= sum_dcs_vertices",
            s.peak_dcs_vertices,
            s.sum_dcs_vertices,
        );
        law(
            "parallel_sweeps <= parallel_sweep_seeds",
            s.parallel_sweeps,
            s.parallel_sweep_seeds,
        );
        if !s.budget_exhausted {
            law("expired <= occurred", s.expired, s.occurred);
        }
        out
    }

    /// From-scratch consistency audit of every incremental structure — the
    /// historical panicking wrapper over [`QueryRuntime::audit`] at
    /// [`crate::audit::AuditLevel::Deep`] (the differential suites' hook).
    #[doc(hidden)]
    pub fn check_consistency<'a>(
        &self,
        window: &WindowGraph,
        lookup: impl Fn(EdgeKey) -> &'a TemporalEdge,
    ) {
        let out = self.audit(window, lookup, crate::audit::AuditLevel::Deep);
        crate::audit::expect_clean("QueryRuntime", &out);
    }

    /// Corruption-hook access for the negative-test corpus.
    #[doc(hidden)]
    pub fn bank_mut(&mut self) -> &mut FilterBank {
        &mut self.bank
    }

    /// Corruption-hook access for the negative-test corpus.
    #[doc(hidden)]
    pub fn dcs_mut(&mut self) -> &mut Dcs {
        &mut self.dcs
    }

    /// Serializes the runtime's dynamic state: window length, accumulated
    /// stats, the filter bank tables and the DCS slabs. The query, DAG and
    /// configuration are *not* included — a snapshot manifest records them
    /// and restore reconstructs the runtime through [`QueryRuntime::new`]
    /// before overlaying this state.
    ///
    /// Must only be called at an event boundary (between
    /// insert/sweep/delete calls), where every scratch transient is dead.
    ///
    /// Phase-timing telemetry is deliberately **not** serialized: snapshot
    /// bytes are identical at every `TCSM_TRACE` level, and a
    /// checkpoint/restore cycle leaves the in-memory recorder untouched.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_i64(self.delta);
        enc.section(|e| self.stats.encode(e));
        enc.section(|e| self.bank.encode_state(e));
        enc.section(|e| self.dcs.encode_state(e));
    }

    /// Overlays serialized state onto a freshly constructed runtime of the
    /// same query, window shape and configuration. The stored window length
    /// must match this runtime's — a snapshot taken under a different δ
    /// describes a different stream and is refused as corrupt.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let delta = dec.get_i64()?;
        if delta != self.delta {
            return Err(CodecError::Invalid(format!(
                "window length {delta} (expected {})",
                self.delta
            )));
        }
        let mut sec = dec.section()?;
        let stats = EngineStats::decode(&mut sec)?;
        sec.finish()?;
        let mut sec = dec.section()?;
        self.bank.restore_state(&mut sec)?;
        sec.finish()?;
        let mut sec = dec.section()?;
        self.dcs.restore_state(&mut sec)?;
        sec.finish()?;
        self.stats = stats;
        Ok(())
    }
}
