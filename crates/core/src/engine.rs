//! The continuous-matching driver (Algorithm 1), in two regimes:
//!
//! * **serial** ([`TcmEngine::step`]): one edge per event, exactly the
//!   paper's loop;
//! * **batched** ([`TcmEngine::step_batch`]): one same-`(timestamp, kind)`
//!   delta batch per step — the window is mutated for the whole batch, the
//!   filter bank and DCS each drain one combined worklist, and a single
//!   `FindMatches` sweep (seeded by every batch edge, with the per-seed
//!   same-timestamp exclusion of the matcher) reports the same match
//!   multiset the serial order would.
//!
//! # Batch staging & reclamation
//!
//! Each batch stages state strictly between `begin_batch` boundaries: the
//! window parks every bucket the batch drains on a *dying* list (ids stay
//! resolvable so the bank/DCS removal deltas remain index-addressed) and
//! reclaims them when the next batch opens; the filter instances run one
//! generation-stamped worklist per batch; the DCS applies the batch's
//! deltas in one monotone pass. Nothing is freed mid-batch, so no layer
//! ever observes a half-applied delta (the bank debug-asserts this).
//!
//! Expired embeddings are enumerated *before* the batch's removals (the
//! structures still admit every expiring edge — see DESIGN.md), occurred
//! embeddings after the batch's insertions.

use crate::config::EngineConfig;
use crate::embedding::{EmbeddingArena, MatchEvent, MatchKind};
use crate::matcher::{Matcher, MatcherScratch};
use crate::pool::WorkerPool;
use crate::stats::EngineStats;
use std::sync::Arc;
use tcsm_dag::{build_best_dag, QueryDag};
use tcsm_dcs::Dcs;
use tcsm_filter::FilterBank;
use tcsm_graph::{
    EventKind, EventQueue, GraphError, QueryGraph, TemporalEdge, TemporalGraph, WindowGraph,
};

/// Time-constrained continuous subgraph matching over one stream.
///
/// Owns the full pipeline: window graph, max-min timestamp filter bank, DCS,
/// and the backtracking matcher. Process the stream with [`TcmEngine::run`]
/// (whole stream) or [`TcmEngine::step`] (one event at a time).
pub struct TcmEngine<'g> {
    q: QueryGraph,
    full: &'g TemporalGraph,
    dag: QueryDag,
    window: WindowGraph,
    bank: FilterBank,
    dcs: Dcs,
    queue: EventQueue,
    next_event: usize,
    cfg: EngineConfig,
    stats: EngineStats,
    deltas_scratch: Vec<tcsm_filter::DcsDelta>,
    /// Materialized edges of the current delta batch (reused allocation).
    batch_scratch: Vec<TemporalEdge>,
    /// Search-state buffers reused by every `FindMatches` call.
    matcher_scratch: MatcherScratch,
    /// The intra-query worker pool (`None` = fully serial engine). Shared
    /// with the filter bank (instance updates) and the batched sweeps.
    pool: Option<Arc<WorkerPool>>,
    /// One matcher scratch per pool lane for fanned-out sweeps (lane 0 is
    /// the caller); pooled and reused across events.
    lane_scratch: Vec<MatcherScratch>,
    /// Per-seed result slots of fanned-out sweeps (reused across batches);
    /// merged in seed order so the match stream stays byte-identical.
    seed_slots: Vec<SeedSlot>,
}

/// Where one fanned-out sweep seed parks its results until the seed-order
/// merge on lane 0.
#[derive(Default)]
struct SeedSlot {
    /// The seed's embeddings (arena swapped out of the lane scratch).
    found: EmbeddingArena,
    /// The seed's matcher counters.
    stats: EngineStats,
    found_count: u64,
}

/// What a `FindMatches` sweep is seeded by.
enum Sweep<'e> {
    /// One updated edge (the serial regime).
    Edge(&'e TemporalEdge),
    /// A whole delta batch, with the arrival/expiration exclusion flag.
    Batch(&'e [TemporalEdge], bool),
}

impl<'g> TcmEngine<'g> {
    /// Builds an engine for query `q` over the stream of `g` with window
    /// `delta` (Algorithm 1, lines 1–8). With [`EngineConfig::threads`]
    /// non-zero the engine owns a private [`WorkerPool`] of that width; use
    /// [`TcmEngine::with_pool`] to share one pool across engines instead.
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
    ) -> Result<TcmEngine<'g>, GraphError> {
        let pool = match cfg.threads {
            0 => None,
            n => Some(Arc::new(WorkerPool::new(n))),
        };
        TcmEngine::build(q, g, delta, cfg, pool)
    }

    /// Builds an engine that runs its parallel phases on an existing pool
    /// (the pool outlives the engine; several engines may share it as long
    /// as they are driven from different threads only via
    /// [`crate::parallel::run_queries_on`]-style outer fan-outs, never
    /// concurrently through one pool). [`EngineConfig::threads`] is ignored
    /// for pool sizing.
    pub fn with_pool(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<TcmEngine<'g>, GraphError> {
        TcmEngine::build(q, g, delta, cfg, Some(pool))
    }

    fn build(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<TcmEngine<'g>, GraphError> {
        let queue = EventQueue::new(g, delta)?;
        let dag = build_best_dag(q);
        let window = WindowGraph::new(g.labels().to_vec(), cfg.directed);
        let mut bank = FilterBank::new(q, &dag, cfg.preset.filter_mode(), &window);
        if let Some(pool) = &pool {
            bank.set_exec(Some(Arc::clone(pool) as Arc<dyn tcsm_filter::Exec>));
        }
        let dcs = Dcs::new(dag.clone(), q, &window);
        Ok(TcmEngine {
            q: q.clone(),
            full: g,
            window,
            bank,
            dcs,
            dag,
            queue,
            next_event: 0,
            cfg,
            stats: EngineStats::default(),
            deltas_scratch: Vec::new(),
            batch_scratch: Vec::new(),
            matcher_scratch: MatcherScratch::default(),
            pool,
            lane_scratch: Vec::new(),
            seed_slots: Vec::new(),
        })
    }

    /// The query DAG chosen by the greedy builder.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The live window graph.
    #[inline]
    pub fn window(&self) -> &WindowGraph {
        &self.window
    }

    /// Current number of DCS edge pairs (Table V's "edges in DCS").
    #[inline]
    pub fn dcs_edges(&self) -> usize {
        self.bank.num_pairs()
    }

    /// Current number of `d2` candidate vertices (Table V's second metric).
    #[inline]
    pub fn dcs_vertices(&self) -> usize {
        self.dcs.num_candidate_vertices()
    }

    /// Remaining events in the stream.
    pub fn remaining_events(&self) -> usize {
        self.queue.len() - self.next_event
    }

    /// Processes one stream event, appending any match events to `out`.
    /// Returns `false` when the stream is exhausted or a total budget was
    /// hit (check [`EngineStats::budget_exhausted`]).
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.stats.budget_exhausted {
            return false;
        }
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        self.stats.events += 1;
        let edge = *self.full.edge(ev.edge);
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        match ev.kind {
            EventKind::Insert => {
                self.window.insert(&edge);
                let (full, q, w) = (&self.full, &self.q, &self.window);
                self.bank
                    .on_insert(q, w, &edge, |k| full.edge(k), &mut deltas);
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
                self.find_matches(&edge, MatchKind::Occurred, out);
            }
            EventKind::Delete => {
                // Expired embeddings are enumerated before the removal (the
                // structures still admit the expiring edge) — see DESIGN.md.
                self.find_matches(&edge, MatchKind::Expired, out);
                self.window.remove(&edge);
                let (full, q, w) = (&self.full, &self.q, &self.window);
                self.bank
                    .on_delete(q, w, &edge, |k| full.edge(k), &mut deltas);
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
            }
        }
        self.deltas_scratch = deltas;
        let de = self.bank.num_pairs() as u64;
        let dv = self.dcs.num_candidate_vertices() as u64;
        self.stats.peak_dcs_edges = self.stats.peak_dcs_edges.max(de);
        self.stats.sum_dcs_edges += de;
        self.stats.peak_dcs_vertices = self.stats.peak_dcs_vertices.max(dv);
        self.stats.sum_dcs_vertices += dv;
        self.stats.parallel_filter_rounds = self.bank.parallel_rounds();
        true
    }

    fn find_matches(
        &mut self,
        edge: &tcsm_graph::TemporalEdge,
        kind: MatchKind,
        out: &mut Vec<MatchEvent>,
    ) {
        self.find_matches_sweep(Sweep::Edge(edge), kind, out);
    }

    fn find_matches_sweep(&mut self, sweep: Sweep<'_>, kind: MatchKind, out: &mut Vec<MatchEvent>) {
        let arrival = match &sweep {
            Sweep::Edge(e) => e.time,
            Sweep::Batch(edges, _) => match edges.first() {
                Some(e) => e.time,
                None => return,
            },
        };
        // A multi-seed sweep fans out across the pool when budgets permit
        // (budgeted runs keep one serial cursor so exhaustion points are
        // exact — see `EngineConfig::budget_limited`).
        if let Sweep::Batch(edges, exclude_later) = sweep {
            if edges.len() > 1 && !self.cfg.budget_limited() {
                if let Some(pool) = self.pool.clone() {
                    self.sweep_parallel(&pool, edges, exclude_later, kind, arrival, out);
                    return;
                }
            }
        }
        let mut scratch = std::mem::take(&mut self.matcher_scratch);
        let (s, found_count) = {
            let mut m = Matcher::new(
                &self.q,
                &self.window,
                &self.dcs,
                &self.bank,
                &self.cfg,
                self.stats.search_nodes,
                &mut scratch,
            );
            match sweep {
                Sweep::Edge(edge) => {
                    m.run(edge);
                }
                Sweep::Batch(edges, exclude_later) => {
                    m.run_batch(edges, exclude_later);
                }
            }
            (m.stats, m.found_count)
        };
        self.merge_matcher_stats(&s, found_count, kind);
        self.drain_found(&mut scratch.found, kind, arrival, out);
        self.matcher_scratch = scratch;
    }

    /// Fans the per-seed searches of one delta batch out across the pool:
    /// every seed runs on some lane with that lane's private scratch, parks
    /// its results in its own [`SeedSlot`], and lane 0 merges the slots in
    /// seed (= key = serial event) order afterwards — so the reported match
    /// stream is byte-identical to the serial sweep at any pool width.
    fn sweep_parallel(
        &mut self,
        pool: &WorkerPool,
        seeds: &[TemporalEdge],
        exclude_later: bool,
        kind: MatchKind,
        arrival: tcsm_graph::Ts,
        out: &mut Vec<MatchEvent>,
    ) {
        let width = pool.width();
        let mut lanes = std::mem::take(&mut self.lane_scratch);
        lanes.resize_with(width, MatcherScratch::default);
        let mut slots = std::mem::take(&mut self.seed_slots);
        if slots.len() < seeds.len() {
            slots.resize_with(seeds.len(), SeedSlot::default);
        }
        let (q, w, dcs, bank, cfg) = (&self.q, &self.window, &self.dcs, &self.bank, &self.cfg);
        pool.for_each_with(&mut slots[..seeds.len()], &mut lanes, |i, slot, scratch| {
            let mut m = Matcher::new(q, w, dcs, bank, cfg, 0, scratch);
            m.run_seed(&seeds[i], exclude_later);
            slot.stats = m.stats;
            slot.found_count = m.found_count;
            // Park the seed's embeddings in its slot; the lane keeps the
            // slot's previous (cleared) arena for its next seed.
            slot.found.clear();
            std::mem::swap(&mut slot.found, &mut scratch.found);
        });
        self.lane_scratch = lanes;
        for slot in &mut slots[..seeds.len()] {
            let s = slot.stats;
            self.merge_matcher_stats(&s, slot.found_count, kind);
            self.drain_found(&mut slot.found, kind, arrival, out);
        }
        self.seed_slots = slots;
        self.stats.parallel_sweeps += 1;
        self.stats.parallel_sweep_seeds += seeds.len() as u64;
    }

    /// Merges one matcher run's counters into the engine stats.
    fn merge_matcher_stats(&mut self, s: &EngineStats, found_count: u64, kind: MatchKind) {
        self.stats.search_nodes += s.search_nodes;
        self.stats.pruned_case1 += s.pruned_case1;
        self.stats.pruned_case2 += s.pruned_case2;
        self.stats.pruned_case3 += s.pruned_case3;
        self.stats.cloned_case1 += s.cloned_case1;
        self.stats.post_check_rejections += s.post_check_rejections;
        self.stats.budget_exhausted |= s.budget_exhausted;
        match kind {
            MatchKind::Occurred => self.stats.occurred += found_count,
            MatchKind::Expired => self.stats.expired += found_count,
        }
    }

    /// Materializes an arena's embeddings as match events (collect mode)
    /// and empties it. The per-embedding boxes are allocated here, at the
    /// API boundary, and nowhere on the search path.
    fn drain_found(
        &self,
        found: &mut EmbeddingArena,
        kind: MatchKind,
        arrival: tcsm_graph::Ts,
        out: &mut Vec<MatchEvent>,
    ) {
        if self.cfg.collect_matches && !found.is_empty() {
            let at = match kind {
                MatchKind::Occurred => arrival,
                MatchKind::Expired => arrival.plus(self.queue.delta()),
            };
            out.reserve(found.len());
            for i in 0..found.len() {
                out.push(MatchEvent {
                    kind,
                    at,
                    embedding: found.materialize(i),
                });
            }
        }
        found.clear();
    }

    /// Processes one same-`(timestamp, kind)` delta batch, appending any
    /// match events to `out`. Returns `false` when the stream is exhausted
    /// or a total budget was hit.
    ///
    /// Reports exactly the match multiset the serial [`TcmEngine::step`]
    /// order would (the differential suite pins this), while paying one
    /// filter/DCS worklist drain and one sweep per batch instead of one per
    /// edge. Per-event search budgets apply per *batch* in this regime, so
    /// budget-limited runs may abort at different points than serial ones.
    /// Interleaving with [`TcmEngine::step`] is safe: a call that lands
    /// mid-batch completes that batch serially (one event per call) before
    /// batching resumes.
    pub fn step_batch(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.stats.budget_exhausted {
            return false;
        }
        // Mixing step() and step_batch() can leave the cursor mid-batch;
        // the batch handlers' completeness invariant (every same-timestamp
        // edge is in the batch) would then be violated, so finish the
        // partial batch serially and resume batching at the next boundary.
        if !self.at_batch_boundary() {
            return self.step(out);
        }
        let Some(batch) = self.queue.batch_at(self.next_event) else {
            return false;
        };
        let (kind, n) = (batch.kind, batch.len());
        let mut edges = std::mem::take(&mut self.batch_scratch);
        edges.clear();
        edges.extend(batch.events.iter().map(|ev| *self.full.edge(ev.edge)));
        self.next_event += n;
        self.stats.events += n as u64;
        self.stats.batches += 1;
        match kind {
            EventKind::Insert => {
                // Window first (whole batch), then one filter/DCS delta,
                // then one combined sweep.
                self.window.begin_batch();
                for e in &edges {
                    self.window.insert_deferred(e);
                }
                let mut deltas = std::mem::take(&mut self.deltas_scratch);
                deltas.clear();
                let (full, q, w) = (&self.full, &self.q, &self.window);
                // A singleton batch is semantically identical under the
                // serial handler (batch completeness: no other alive edge
                // shares its timestamp) and skips the batch bookkeeping, so
                // uniform streams pay nothing for batching support.
                if let [e] = edges[..] {
                    self.bank.on_insert(q, w, &e, |k| full.edge(k), &mut deltas);
                } else {
                    self.bank
                        .on_insert_batch(q, w, &edges, |k| full.edge(k), &mut deltas);
                }
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
                self.deltas_scratch = deltas;
                let sweep = match &edges[..] {
                    [e] => Sweep::Edge(e),
                    _ => Sweep::Batch(&edges, true),
                };
                self.find_matches_sweep(sweep, MatchKind::Occurred, out);
            }
            EventKind::Delete => {
                // Expired embeddings are enumerated before any removal (the
                // structures still admit every expiring edge); the per-seed
                // exclusion reproduces the serial progressive removals.
                let sweep = match &edges[..] {
                    [e] => Sweep::Edge(e),
                    _ => Sweep::Batch(&edges, false),
                };
                self.find_matches_sweep(sweep, MatchKind::Expired, out);
                self.window.begin_batch();
                for e in &edges {
                    self.window.remove_deferred(e);
                }
                let mut deltas = std::mem::take(&mut self.deltas_scratch);
                deltas.clear();
                let (full, q, w) = (&self.full, &self.q, &self.window);
                if let [e] = edges[..] {
                    self.bank.on_delete(q, w, &e, |k| full.edge(k), &mut deltas);
                } else {
                    self.bank
                        .on_delete_batch(q, w, &edges, |k| full.edge(k), &mut deltas);
                }
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
                self.deltas_scratch = deltas;
            }
        }
        self.batch_scratch = edges;
        // DCS size stats are sampled once per batch at the post-batch state
        // and weighted by the batch length, so averages stay comparable to
        // the serial per-event sampling on uniform streams.
        let de = self.bank.num_pairs() as u64;
        let dv = self.dcs.num_candidate_vertices() as u64;
        self.stats.peak_dcs_edges = self.stats.peak_dcs_edges.max(de);
        self.stats.sum_dcs_edges += de * n as u64;
        self.stats.peak_dcs_vertices = self.stats.peak_dcs_vertices.max(dv);
        self.stats.sum_dcs_vertices += dv * n as u64;
        self.stats.parallel_filter_rounds = self.bank.parallel_rounds();
        true
    }

    /// Is the event cursor at a delta-batch boundary (start of stream or a
    /// `(time, kind)` change)? Serial stepping can park it mid-batch.
    fn at_batch_boundary(&self) -> bool {
        let events = self.queue.events();
        let Some(next) = events.get(self.next_event) else {
            return true;
        };
        match self.next_event.checked_sub(1).and_then(|i| events.get(i)) {
            Some(prev) => (prev.at, prev.kind) != (next.at, next.kind),
            None => true,
        }
    }

    /// One step in the mode [`EngineConfig::batching`] selects.
    #[inline]
    fn step_dispatch(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.cfg.batching {
            self.step_batch(out)
        } else {
            self.step(out)
        }
    }

    /// Processes the whole stream and returns every match event, honouring
    /// [`EngineConfig::batching`].
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step_dispatch(&mut out) {}
        out
    }

    /// Processes the whole stream in delta batches regardless of the
    /// configured mode.
    pub fn run_batched(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step_batch(&mut out) {}
        out
    }

    /// Processes the whole stream counting matches without materializing
    /// them (used by the benchmark harness), honouring
    /// [`EngineConfig::batching`].
    pub fn run_counting(&mut self) -> &EngineStats {
        let mut out = Vec::new();
        while self.step_dispatch(&mut out) {
            out.clear();
        }
        &self.stats
    }

    /// From-scratch consistency audit of every incremental structure
    /// (filter tables, bank membership, DCS candidacies) against the
    /// current window — the invariant the differential suite checks after
    /// every batch.
    #[doc(hidden)]
    pub fn check_consistency(&self) {
        let alive: Vec<&tcsm_graph::TemporalEdge> = self
            .window
            .buckets()
            .flat_map(|b| b.iter().map(|r| self.full.edge(r.key)))
            .collect();
        self.bank
            .check_consistency(&self.q, &self.window, alive.into_iter());
        self.dcs.check_consistency(&self.q, &self.window);
    }
}
