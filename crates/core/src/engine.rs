//! The continuous-matching driver (Algorithm 1), in two regimes:
//!
//! * **serial** ([`TcmEngine::step`]): one edge per event, exactly the
//!   paper's loop;
//! * **batched** ([`TcmEngine::step_batch`]): one same-`(timestamp, kind)`
//!   delta batch per step — the window is mutated for the whole batch, the
//!   filter bank and DCS each drain one combined worklist, and a single
//!   `FindMatches` sweep (seeded by every batch edge, with the per-seed
//!   same-timestamp exclusion of the matcher) reports the same match
//!   multiset the serial order would.
//!
//! # Ownership split
//!
//! The engine owns the *stream state* — the event queue, its cursor, and
//! the live [`WindowGraph`] — and delegates all per-query work to one
//! [`QueryRuntime`], which borrows the window per call. That split is what
//! the multi-query service builds on: `tcsm-service` owns one window per
//! shard and drives many runtimes over it, while this engine remains the
//! one-query configuration of the very same pipeline (the service
//! differential suite pins that they stay byte-identical).
//!
//! # Batch staging & reclamation
//!
//! Each batch stages state strictly between `begin_batch` boundaries: the
//! window parks every bucket the batch drains on a *dying* list (ids stay
//! resolvable so the bank/DCS removal deltas remain index-addressed) and
//! reclaims them when the next batch opens; the filter instances run one
//! generation-stamped worklist per batch; the DCS applies the batch's
//! deltas in one monotone pass. Nothing is freed mid-batch, so no layer
//! ever observes a half-applied delta (the bank debug-asserts this).
//!
//! Expired embeddings are enumerated *before* the batch's removals (the
//! structures still admit every expiring edge — see DESIGN.md), occurred
//! embeddings after the batch's insertions.

use crate::audit::{AuditLevel, AuditViolation, Auditor};
use crate::config::EngineConfig;
use crate::embedding::MatchEvent;
use crate::pool::WorkerPool;
use crate::runtime::QueryRuntime;
use crate::stats::EngineStats;
use std::sync::Arc;
use tcsm_dag::QueryDag;
use tcsm_graph::{
    EventKind, EventQueue, GraphError, QueryGraph, TemporalEdge, TemporalGraph, WindowGraph,
};
use tcsm_telemetry::{Clock, Phase};

/// Time-constrained continuous subgraph matching over one stream.
///
/// Owns the stream state (event queue + window graph) and one
/// [`QueryRuntime`] (filter bank, DCS, matcher). Process the stream with
/// [`TcmEngine::run`] (whole stream) or [`TcmEngine::step`] (one event at
/// a time).
pub struct TcmEngine<'g> {
    full: &'g TemporalGraph,
    window: WindowGraph,
    queue: EventQueue,
    next_event: usize,
    rt: QueryRuntime,
    /// Materialized edges of the current delta batch (reused allocation).
    batch_scratch: Vec<TemporalEdge>,
    /// Step-path invariant audit cadence (`TCSM_AUDIT` × `TCSM_AUDIT_EVERY`).
    auditor: Auditor,
}

impl<'g> TcmEngine<'g> {
    /// Builds an engine for query `q` over the stream of `g` with window
    /// `delta` (Algorithm 1, lines 1–8). With [`EngineConfig::threads`]
    /// non-zero the engine owns a private [`WorkerPool`] of that width; use
    /// [`TcmEngine::with_pool`] to share one pool across engines instead.
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
    ) -> Result<TcmEngine<'g>, GraphError> {
        let pool = match cfg.threads {
            0 => None,
            n => Some(Arc::new(WorkerPool::new(n))),
        };
        TcmEngine::build(q, g, delta, cfg, pool)
    }

    /// Builds an engine that runs its parallel phases on an existing pool
    /// (the pool outlives the engine; several engines may share it as long
    /// as they are driven from different threads only via outer fan-outs,
    /// never concurrently through one pool). [`EngineConfig::threads`] is
    /// ignored for pool sizing.
    pub fn with_pool(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<TcmEngine<'g>, GraphError> {
        TcmEngine::build(q, g, delta, cfg, Some(pool))
    }

    fn build(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<TcmEngine<'g>, GraphError> {
        let queue = EventQueue::new(g, delta)?;
        let window = WindowGraph::new(g.labels().to_vec(), cfg.directed);
        let rt = QueryRuntime::new(q, &window, delta, cfg, pool);
        Ok(TcmEngine {
            full: g,
            window,
            queue,
            next_event: 0,
            rt,
            batch_scratch: Vec::new(),
            auditor: Auditor::from_env(),
        })
    }

    /// The query DAG chosen by the greedy builder.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        self.rt.dag()
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        self.rt.stats()
    }

    /// Overrides the Eq. (1) kernel on every filter instance (tests and
    /// interleaved benches; production selection is `TCSM_KERNEL`).
    #[doc(hidden)]
    pub fn set_kernel(&mut self, kern: tcsm_filter::KernelKind) {
        self.rt.set_kernel(kern);
    }

    /// The per-phase latency recorder: queue pop, filter update, DCS
    /// apply, and `FindMatches` sweep spans (empty unless `TCSM_TRACE`
    /// enabled tracing). Timing is telemetry-only — never part of
    /// [`EngineStats`] or any snapshot.
    #[inline]
    pub fn telemetry(&self) -> &tcsm_telemetry::PhaseRecorder {
        self.rt.telemetry()
    }

    /// Replaces the recorder with one at `level` reading `clock` —
    /// deterministic-clock tests and the interleaved trace benches
    /// (production selection is `TCSM_TRACE`).
    #[doc(hidden)]
    pub fn set_trace(&mut self, level: tcsm_telemetry::TraceLevel, clock: Arc<dyn Clock>) {
        self.rt.set_trace(level, clock);
    }

    /// The live window graph.
    #[inline]
    pub fn window(&self) -> &WindowGraph {
        &self.window
    }

    /// Current number of DCS edge pairs (Table V's "edges in DCS").
    #[inline]
    pub fn dcs_edges(&self) -> usize {
        self.rt.dcs_edges()
    }

    /// Current number of `d2` candidate vertices (Table V's second metric).
    #[inline]
    pub fn dcs_vertices(&self) -> usize {
        self.rt.dcs_vertices()
    }

    /// Remaining events in the stream.
    pub fn remaining_events(&self) -> usize {
        self.queue.len() - self.next_event
    }

    /// Processes one stream event, appending any match events to `out`.
    /// Returns `false` when the stream is exhausted or a total budget was
    /// hit (check [`EngineStats::budget_exhausted`]).
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.rt.done() {
            return false;
        }
        let t = self.rt.telemetry().start();
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        let full = self.full;
        let edge = *full.edge(ev.edge);
        self.rt.telemetry_mut().stop(Phase::QueuePop, t);
        match ev.kind {
            EventKind::Insert => {
                self.window.insert(&edge);
                self.rt
                    .apply_insert(&self.window, &edge, |k| full.edge(k), out);
            }
            EventKind::Delete => {
                // Expired embeddings are enumerated before the removal (the
                // structures still admit the expiring edge) — see DESIGN.md.
                self.rt.sweep_expiring(&self.window, &edge, out);
                self.window.remove(&edge);
                self.rt.apply_delete(&self.window, &edge, |k| full.edge(k));
            }
        }
        self.maybe_audit(1);
        true
    }

    /// Processes one same-`(timestamp, kind)` delta batch, appending any
    /// match events to `out`. Returns `false` when the stream is exhausted
    /// or a total budget was hit.
    ///
    /// Reports exactly the match multiset the serial [`TcmEngine::step`]
    /// order would (the differential suite pins this), while paying one
    /// filter/DCS worklist drain and one sweep per batch instead of one per
    /// edge. Per-event search budgets apply per *batch* in this regime, so
    /// budget-limited runs may abort at different points than serial ones.
    /// Interleaving with [`TcmEngine::step`] is safe: a call that lands
    /// mid-batch completes that batch serially (one event per call) before
    /// batching resumes.
    pub fn step_batch(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.rt.done() {
            return false;
        }
        // Mixing step() and step_batch() can leave the cursor mid-batch;
        // the batch handlers' completeness invariant (every same-timestamp
        // edge is in the batch) would then be violated, so finish the
        // partial batch serially and resume batching at the next boundary.
        if !self.at_batch_boundary() {
            return self.step(out);
        }
        let t = self.rt.telemetry().start();
        let Some(batch) = self.queue.batch_at(self.next_event) else {
            return false;
        };
        let kind = batch.kind;
        let full = self.full;
        let mut edges = std::mem::take(&mut self.batch_scratch);
        edges.clear();
        edges.extend(batch.events.iter().map(|ev| *full.edge(ev.edge)));
        self.next_event += edges.len();
        self.rt.telemetry_mut().stop(Phase::QueuePop, t);
        match kind {
            EventKind::Insert => {
                // Window first (whole batch), then one filter/DCS delta,
                // then one combined sweep.
                self.window.begin_batch();
                for e in &edges {
                    self.window.insert_deferred(e);
                }
                self.rt
                    .apply_insert_batch(&self.window, &edges, |k| full.edge(k), out);
            }
            EventKind::Delete => {
                // Expired embeddings are enumerated before any removal (the
                // structures still admit every expiring edge); the per-seed
                // exclusion reproduces the serial progressive removals.
                self.rt.sweep_expiring_batch(&self.window, &edges, out);
                self.window.begin_batch();
                for e in &edges {
                    self.window.remove_deferred(e);
                }
                self.rt
                    .apply_delete_batch(&self.window, &edges, |k| full.edge(k));
            }
        }
        let processed = edges.len() as u64;
        self.batch_scratch = edges;
        self.maybe_audit(processed);
        true
    }

    /// Is the event cursor at a delta-batch boundary (start of stream or a
    /// `(time, kind)` change)? Serial stepping can park it mid-batch.
    fn at_batch_boundary(&self) -> bool {
        let events = self.queue.events();
        let Some(next) = events.get(self.next_event) else {
            return true;
        };
        match self.next_event.checked_sub(1).and_then(|i| events.get(i)) {
            Some(prev) => (prev.at, prev.kind) != (next.at, next.kind),
            None => true,
        }
    }

    /// One step in the mode [`EngineConfig::batching`] selects.
    #[inline]
    fn step_dispatch(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.rt.config().batching {
            self.step_batch(out)
        } else {
            self.step(out)
        }
    }

    /// Processes the whole stream and returns every match event, honouring
    /// [`EngineConfig::batching`].
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step_dispatch(&mut out) {}
        out
    }

    /// Processes the whole stream in delta batches regardless of the
    /// configured mode.
    pub fn run_batched(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step_batch(&mut out) {}
        out
    }

    /// Processes the whole stream counting matches without materializing
    /// them (used by the benchmark harness), honouring
    /// [`EngineConfig::batching`].
    pub fn run_counting(&mut self) -> &EngineStats {
        let mut out = Vec::new();
        while self.step_dispatch(&mut out) {
            out.clear();
        }
        self.rt.stats()
    }

    /// Advances the audit countdown by `events` processed events and runs
    /// the configured-level audit when it fires, panicking on violations
    /// (the step-path tripwire — see [`crate::audit`]).
    fn maybe_audit(&mut self, events: u64) {
        if !self.auditor.due(events) {
            return;
        }
        let out = self.audit_now(self.auditor.level());
        crate::audit::expect_clean("TcmEngine step audit", &out);
    }

    /// Runs the invariant audit at `level` against the current window and
    /// returns the violations found (empty on a healthy engine).
    pub fn audit_now(&self, level: AuditLevel) -> Vec<AuditViolation> {
        let full = self.full;
        self.rt.audit(&self.window, |k| full.edge(k), level)
    }

    /// Overrides the step-path audit level/cadence chosen from the
    /// environment (tests; production selection is `TCSM_AUDIT` ×
    /// `TCSM_AUDIT_EVERY`).
    #[doc(hidden)]
    pub fn set_audit(&mut self, level: AuditLevel, every: u64) {
        self.auditor = Auditor::with(level, every);
    }

    /// Corruption-hook access for the negative-test corpus.
    #[doc(hidden)]
    pub fn runtime_mut(&mut self) -> &mut QueryRuntime {
        &mut self.rt
    }

    /// From-scratch consistency audit of every incremental structure
    /// (filter tables, bank membership, DCS candidacies) against the
    /// current window — the invariant the differential suite checks after
    /// every batch.
    #[doc(hidden)]
    pub fn check_consistency(&self) {
        let full = self.full;
        self.rt.check_consistency(&self.window, |k| full.edge(k));
    }
}
