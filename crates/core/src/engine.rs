//! The continuous-matching driver (Algorithm 1).

use crate::config::EngineConfig;
use crate::embedding::{MatchEvent, MatchKind};
use crate::matcher::{Matcher, MatcherScratch};
use crate::stats::EngineStats;
use tcsm_dag::{build_best_dag, QueryDag};
use tcsm_dcs::Dcs;
use tcsm_filter::FilterBank;
use tcsm_graph::{EventKind, EventQueue, GraphError, QueryGraph, TemporalGraph, WindowGraph};

/// Time-constrained continuous subgraph matching over one stream.
///
/// Owns the full pipeline: window graph, max-min timestamp filter bank, DCS,
/// and the backtracking matcher. Process the stream with [`TcmEngine::run`]
/// (whole stream) or [`TcmEngine::step`] (one event at a time).
pub struct TcmEngine<'g> {
    q: QueryGraph,
    full: &'g TemporalGraph,
    dag: QueryDag,
    window: WindowGraph,
    bank: FilterBank,
    dcs: Dcs,
    queue: EventQueue,
    next_event: usize,
    cfg: EngineConfig,
    stats: EngineStats,
    deltas_scratch: Vec<tcsm_filter::DcsDelta>,
    /// Search-state buffers reused by every `FindMatches` call.
    matcher_scratch: MatcherScratch,
}

impl<'g> TcmEngine<'g> {
    /// Builds an engine for query `q` over the stream of `g` with window
    /// `delta` (Algorithm 1, lines 1–8).
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        cfg: EngineConfig,
    ) -> Result<TcmEngine<'g>, GraphError> {
        let queue = EventQueue::new(g, delta)?;
        let dag = build_best_dag(q);
        let window = WindowGraph::new(g.labels().to_vec(), cfg.directed);
        let bank = FilterBank::new(q, &dag, cfg.preset.filter_mode(), &window);
        let dcs = Dcs::new(dag.clone(), q, &window);
        Ok(TcmEngine {
            q: q.clone(),
            full: g,
            window,
            bank,
            dcs,
            dag,
            queue,
            next_event: 0,
            cfg,
            stats: EngineStats::default(),
            deltas_scratch: Vec::new(),
            matcher_scratch: MatcherScratch::default(),
        })
    }

    /// The query DAG chosen by the greedy builder.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The live window graph.
    #[inline]
    pub fn window(&self) -> &WindowGraph {
        &self.window
    }

    /// Current number of DCS edge pairs (Table V's "edges in DCS").
    #[inline]
    pub fn dcs_edges(&self) -> usize {
        self.bank.num_pairs()
    }

    /// Current number of `d2` candidate vertices (Table V's second metric).
    #[inline]
    pub fn dcs_vertices(&self) -> usize {
        self.dcs.num_candidate_vertices()
    }

    /// Remaining events in the stream.
    pub fn remaining_events(&self) -> usize {
        self.queue.len() - self.next_event
    }

    /// Processes one stream event, appending any match events to `out`.
    /// Returns `false` when the stream is exhausted or a total budget was
    /// hit (check [`EngineStats::budget_exhausted`]).
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.stats.budget_exhausted {
            return false;
        }
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        self.stats.events += 1;
        let edge = *self.full.edge(ev.edge);
        let mut deltas = std::mem::take(&mut self.deltas_scratch);
        deltas.clear();
        match ev.kind {
            EventKind::Insert => {
                self.window.insert(&edge);
                let (full, q, w) = (&self.full, &self.q, &self.window);
                self.bank
                    .on_insert(q, w, &edge, |k| full.edge(k), &mut deltas);
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
                self.find_matches(&edge, MatchKind::Occurred, out);
            }
            EventKind::Delete => {
                // Expired embeddings are enumerated before the removal (the
                // structures still admit the expiring edge) — see DESIGN.md.
                self.find_matches(&edge, MatchKind::Expired, out);
                self.window.remove(&edge);
                let (full, q, w) = (&self.full, &self.q, &self.window);
                self.bank
                    .on_delete(q, w, &edge, |k| full.edge(k), &mut deltas);
                self.dcs.apply(q, w, |k| full.edge(k), &deltas);
            }
        }
        self.deltas_scratch = deltas;
        let de = self.bank.num_pairs() as u64;
        let dv = self.dcs.num_candidate_vertices() as u64;
        self.stats.peak_dcs_edges = self.stats.peak_dcs_edges.max(de);
        self.stats.sum_dcs_edges += de;
        self.stats.peak_dcs_vertices = self.stats.peak_dcs_vertices.max(dv);
        self.stats.sum_dcs_vertices += dv;
        true
    }

    fn find_matches(
        &mut self,
        edge: &tcsm_graph::TemporalEdge,
        kind: MatchKind,
        out: &mut Vec<MatchEvent>,
    ) {
        let mut scratch = std::mem::take(&mut self.matcher_scratch);
        let (s, found_count) = {
            let mut m = Matcher::new(
                &self.q,
                &self.window,
                &self.dcs,
                &self.bank,
                &self.cfg,
                self.stats.search_nodes,
                &mut scratch,
            );
            m.run(edge);
            (m.stats, m.found_count)
        };
        // Merge matcher counters into the engine stats.
        self.stats.search_nodes += s.search_nodes;
        self.stats.pruned_case1 += s.pruned_case1;
        self.stats.pruned_case2 += s.pruned_case2;
        self.stats.pruned_case3 += s.pruned_case3;
        self.stats.cloned_case1 += s.cloned_case1;
        self.stats.post_check_rejections += s.post_check_rejections;
        self.stats.budget_exhausted |= s.budget_exhausted;
        match kind {
            MatchKind::Occurred => self.stats.occurred += found_count,
            MatchKind::Expired => self.stats.expired += found_count,
        }
        if self.cfg.collect_matches {
            let at = match kind {
                MatchKind::Occurred => edge.time,
                MatchKind::Expired => edge.time.plus(self.queue.delta()),
            };
            out.extend(scratch.found.drain(..).map(|embedding| MatchEvent {
                kind,
                at,
                embedding,
            }));
        } else {
            scratch.found.clear();
        }
        self.matcher_scratch = scratch;
    }

    /// Processes the whole stream and returns every match event.
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step(&mut out) {}
        out
    }

    /// Processes the whole stream counting matches without materializing
    /// them (used by the benchmark harness).
    pub fn run_counting(&mut self) -> &EngineStats {
        let mut out = Vec::new();
        while self.step(&mut out) {
            out.clear();
        }
        &self.stats
    }
}
