//! Reported embeddings and match events.

use serde::{Deserialize, Serialize};
use tcsm_graph::codec::{CodecError, Decoder, Encoder};
use tcsm_graph::{EdgeKey, QueryGraph, TemporalGraph, Ts, VertexId};

/// A complete time-constrained embedding: one data vertex per query vertex
/// and one data edge per query edge (Definition II.3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Embedding {
    /// `vertices[u]` = image of query vertex `u`.
    pub vertices: Vec<VertexId>,
    /// `edges[e]` = image of query edge `e`.
    pub edges: Vec<EdgeKey>,
}

impl Embedding {
    /// Verifies every condition of Definition II.3 against the full graph —
    /// the test-oracle validity check (labels, topology, injectivity, `≺`).
    pub fn verify(&self, q: &QueryGraph, g: &TemporalGraph) -> bool {
        if self.vertices.len() != q.num_vertices() || self.edges.len() != q.num_edges() {
            return false;
        }
        // Injectivity.
        let mut vs = self.vertices.clone();
        vs.sort_unstable();
        vs.dedup();
        if vs.len() != self.vertices.len() {
            return false;
        }
        let mut es = self.edges.clone();
        es.sort_unstable();
        es.dedup();
        if es.len() != self.edges.len() {
            return false;
        }
        // Labels.
        for (u, &v) in self.vertices.iter().enumerate() {
            if q.label(u) != g.label(v) {
                return false;
            }
        }
        // Topology + edge labels.
        for (ei, &k) in self.edges.iter().enumerate() {
            let qe = q.edge(ei);
            let de = g.edge(k);
            let (ia, ib) = (self.vertices[qe.a], self.vertices[qe.b]);
            let fwd = de.src == ia && de.dst == ib;
            let bwd = de.src == ib && de.dst == ia;
            if !(fwd || bwd) {
                return false;
            }
            if qe.label != tcsm_graph::EDGE_LABEL_ANY && qe.label != de.label {
                return false;
            }
        }
        // Temporal order.
        for (a, b) in q.order().pairs() {
            if g.edge(self.edges[a]).time >= g.edge(self.edges[b]).time {
                return false;
            }
        }
        true
    }

    /// The timestamps of the images of all query edges, by query edge id.
    pub fn edge_times(&self, g: &TemporalGraph) -> Vec<Ts> {
        self.edges.iter().map(|&k| g.edge(k).time).collect()
    }

    /// Serializes the embedding (snapshot/wire format).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.vertices.len());
        for &v in &self.vertices {
            enc.put_u32(v);
        }
        enc.put_usize(self.edges.len());
        for &k in &self.edges {
            enc.put_u32(k.0);
        }
    }

    /// Inverse of [`Embedding::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Embedding, CodecError> {
        let nv = dec.get_count(4)?;
        let vertices = (0..nv).map(|_| dec.get_u32()).collect::<Result<_, _>>()?;
        let ne = dec.get_count(4)?;
        let edges = (0..ne)
            .map(|_| dec.get_u32().map(EdgeKey))
            .collect::<Result<_, _>>()?;
        Ok(Embedding { vertices, edges })
    }
}

/// A flat bump arena of complete embeddings: all vertex images in one
/// vector, all edge images in another, `nv`/`ne`-strided.
///
/// The matcher reports embeddings here instead of boxing two arrays per
/// [`Embedding`], so the steady-state search path performs **zero**
/// allocations (amortized) even in collect mode; real `Embedding`s are
/// materialized only at the engine's API boundary, where match events leave
/// the per-event scratch. Arenas are owned per worker lane under the
/// parallel runtime and reset per event/batch, so capacity tracks the
/// busiest single event, not the stream.
#[derive(Debug, Default)]
pub struct EmbeddingArena {
    verts: Vec<VertexId>,
    edges: Vec<EdgeKey>,
    /// Strides: query vertex/edge counts (set by [`EmbeddingArena::reset`]).
    nv: usize,
    ne: usize,
}

impl EmbeddingArena {
    /// Empties the arena and fixes the strides for the next event's query.
    pub fn reset(&mut self, nv: usize, ne: usize) {
        debug_assert!(nv > 0 && ne > 0, "queries have at least one edge");
        self.verts.clear();
        self.edges.clear();
        self.nv = nv;
        self.ne = ne;
    }

    /// Number of embeddings currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len().checked_div(self.nv).unwrap_or(0)
    }

    /// Is the arena empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Appends one embedding from the matcher's (complete) mapping rows.
    pub(crate) fn push_mapping(&mut self, vmap: &[Option<VertexId>], emap: &[Option<EdgeKey>]) {
        debug_assert_eq!((vmap.len(), emap.len()), (self.nv, self.ne));
        self.verts
            .extend(vmap.iter().map(|v| v.expect("complete mapping row")));
        self.edges
            .extend(emap.iter().map(|e| e.expect("complete mapping row")));
    }

    /// Appends a copy of embedding `i` with query edge `e` remapped to `k` —
    /// the Case-1 candidate-swap clone, two `memcpy`s and one store.
    pub(crate) fn push_clone_with_edge(&mut self, i: usize, e: usize, k: EdgeKey) {
        let vs = i * self.nv..(i + 1) * self.nv;
        let es = i * self.ne..(i + 1) * self.ne;
        self.verts.extend_from_within(vs);
        self.edges.extend_from_within(es);
        let last = self.edges.len() - self.ne + e;
        self.edges[last] = k;
    }

    /// Materializes embedding `i` as an owned [`Embedding`] (the only place
    /// per-embedding boxes are allocated).
    pub fn materialize(&self, i: usize) -> Embedding {
        Embedding {
            vertices: self.verts[i * self.nv..(i + 1) * self.nv].to_vec(),
            edges: self.edges[i * self.ne..(i + 1) * self.ne].to_vec(),
        }
    }

    /// Empties the arena without touching strides or capacity.
    pub fn clear(&mut self) {
        self.verts.clear();
        self.edges.clear();
    }
}

/// Whether a match appeared or disappeared.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    /// The embedding came into existence (edge arrival).
    Occurred,
    /// The embedding ceased to exist (edge expiration).
    Expired,
}

/// One reported match event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Occurrence or expiration.
    pub kind: MatchKind,
    /// Stream time of the triggering event.
    pub at: Ts,
    /// The embedding concerned.
    pub embedding: Embedding,
}

impl MatchEvent {
    /// Serializes the event (wire delivery format).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self.kind {
            MatchKind::Occurred => 0,
            MatchKind::Expired => 1,
        });
        enc.put_ts(self.at);
        self.embedding.encode(enc);
    }

    /// Inverse of [`MatchEvent::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<MatchEvent, CodecError> {
        let kind = match dec.get_u8()? {
            0 => MatchKind::Occurred,
            1 => MatchKind::Expired,
            other => {
                return Err(CodecError::Invalid(format!("bad match kind tag {other}")));
            }
        };
        Ok(MatchEvent {
            kind,
            at: dec.get_ts()?,
            embedding: Embedding::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};

    fn setup() -> (QueryGraph, TemporalGraph) {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(1);
        let e0 = qb.edge(a, b);
        let c = qb.vertex(0);
        let e1 = qb.edge(b, c);
        qb.precede(e0, e1);
        let q = qb.build().unwrap();
        let mut gb = TemporalGraphBuilder::new();
        let v0 = gb.vertex(0);
        let v1 = gb.vertex(1);
        let v2 = gb.vertex(0);
        gb.edge(v0, v1, 1);
        gb.edge(v1, v2, 5);
        let g = gb.build().unwrap();
        (q, g)
    }

    #[test]
    fn match_event_roundtrips_and_rejects_bad_tags() {
        let ev = MatchEvent {
            kind: MatchKind::Expired,
            at: Ts::new(42),
            embedding: Embedding {
                vertices: vec![3, 1, 4],
                edges: vec![EdgeKey(1), EdgeKey(5)],
            },
        };
        let mut enc = Encoder::new();
        ev.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(MatchEvent::decode(&mut dec).unwrap(), ev);
        dec.finish().unwrap();
        // A forged kind tag is a typed error, not a panic.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(MatchEvent::decode(&mut Decoder::new(&bad)).is_err());
        // Truncations are typed errors.
        for keep in 0..bytes.len() {
            assert!(MatchEvent::decode(&mut Decoder::new(&bytes[..keep])).is_err());
        }
    }

    #[test]
    fn verify_accepts_valid_embedding() {
        let (q, g) = setup();
        let m = Embedding {
            vertices: vec![0, 1, 2],
            edges: vec![EdgeKey(0), EdgeKey(1)],
        };
        assert!(m.verify(&q, &g));
        assert_eq!(m.edge_times(&g), vec![Ts::new(1), Ts::new(5)]);
    }

    #[test]
    fn verify_rejects_violations() {
        let (q, g) = setup();
        // Temporal order violated (e1 before e0).
        let m = Embedding {
            vertices: vec![2, 1, 0],
            edges: vec![EdgeKey(1), EdgeKey(0)],
        };
        assert!(!m.verify(&q, &g));
        // Non-injective vertices.
        let m = Embedding {
            vertices: vec![0, 1, 0],
            edges: vec![EdgeKey(0), EdgeKey(1)],
        };
        assert!(!m.verify(&q, &g));
        // Wrong topology.
        let m = Embedding {
            vertices: vec![0, 1, 2],
            edges: vec![EdgeKey(1), EdgeKey(0)],
        };
        assert!(!m.verify(&q, &g));
    }
}
