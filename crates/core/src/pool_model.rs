//! A schedule-exploring model checker for the [`crate::pool`] ticket
//! protocol.
//!
//! [`WorkerPool::dispatch_chunked`](crate::pool::WorkerPool::dispatch_chunked)
//! coordinates the caller lane plus parked workers through three shared
//! atomics: a **monotone claim counter** (tickets are claimed by CAS from a
//! per-dispatch `base`, and the counter is *never* reset — that is the ABA
//! defence that keeps a stale lane from re-claiming an old ticket), a
//! **remaining countdown** (one decrement per ticket, panicking chunks
//! included), and the published job itself. This module models exactly that
//! protocol as a deterministically schedulable state machine and
//! **exhaustively explores every interleaving** for small configurations,
//! checking:
//!
//! * every index of every dispatch runs **exactly once**
//!   ([`Violation::DoubleRun`] / [`Violation::LostIndex`]),
//! * a panic mid-chunk still retires its chunk — the dispatcher reaches
//!   `Done` instead of waiting forever ([`Violation::Hang`]),
//! * the dispatcher's `remaining == 0` wait is eventually enabled on every
//!   schedule ([`Violation::Hang`]).
//!
//! # Model shape
//!
//! One *dispatcher* actor publishes each dispatch in sequence, then runs
//! the caller-lane claim loop, then waits for `remaining == 0` before
//! clearing the job and publishing the next. `extra_lanes` *worker* actors
//! park, grab the currently published job (capturing `d`/`base` like the
//! real workers copy the `Job`), and run the same claim loop. The claim
//! loop is modelled at atomic-step granularity — **load** and **CAS** are
//! separate transitions, so every stale-read interleaving is explored —
//! while a chunk execution is one atomic step (per-index interleaving
//! cannot affect the counted properties).
//!
//! # Seeded bugs
//!
//! The checker must *fail* on broken variants of the claim protocol, or it
//! proves nothing. [`Bug`] seeds the two historical failure shapes:
//!
//! * [`Bug::NonAtomicClaim`] — the CAS becomes a blind `load; store`
//!   increment. Two lanes that read the same counter value both claim the
//!   same ticket → `DoubleRun`.
//! * [`Bug::ResetCounter`] — each publish resets the claim counter to `0`
//!   instead of continuing the monotone sequence. A lane delayed between
//!   its load and its CAS can now re-claim a ticket of the *previous*
//!   dispatch (the classic ABA) → `DoubleRun` on the old dispatch and a
//!   stolen ticket on the new one.
//!
//! Out of scope: condvar wakeups (the model treats every actor as always
//! schedulable, which over-approximates wakeups) and the inline serial
//! fast path (`width == 1 || tickets == 1`), which has no concurrency.
//!
//! `crates/core/tests/pool_model.rs` gates all of the above in CI.

use tcsm_graph::FxHashSet;

/// One `dispatch_chunked(n, chunk, ..)` call to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dispatch {
    /// Index count (`n`).
    pub n: u8,
    /// Chunk size (≥ 1).
    pub chunk: u8,
}

impl Dispatch {
    fn tickets(self) -> u8 {
        self.n.div_ceil(self.chunk)
    }
}

/// Which (if any) seeded protocol bug to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// The faithful protocol.
    None,
    /// Ticket claim is a blind `load; store` instead of a CAS.
    NonAtomicClaim,
    /// The claim counter is reset to `0` at every publish (re-introduces
    /// the ABA the monotone counter exists to kill).
    ResetCounter,
}

/// A model configuration: lane count, dispatch sequence, seeded bug, and
/// an optional injected panic.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Worker lanes in addition to the dispatcher (total width =
    /// `extra_lanes + 1`).
    pub extra_lanes: usize,
    /// The dispatches, applied in order on one pool.
    pub dispatches: Vec<Dispatch>,
    /// Seeded protocol bug (or [`Bug::None`]).
    pub bug: Bug,
    /// Inject a panic at `(dispatch, index)`: the run marking that chunk
    /// stops at `index` (the panicking closure), but the chunk still
    /// retires. The panicked index and the rest of its chunk are exempt
    /// from the exactly-once check.
    pub panic_at: Option<(u8, u8)>,
}

/// A property violation found on some schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Violation {
    /// `(dispatch, index)` executed more than once.
    DoubleRun { dispatch: u8, index: u8 },
    /// `(dispatch, index)` never executed although every dispatch retired.
    LostIndex { dispatch: u8, index: u8 },
    /// A schedule reached a state with no enabled transition before the
    /// dispatcher finished (deadlock / lost ticket).
    Hang,
}

/// Exploration result.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Distinct states visited.
    pub states: usize,
    /// Deduplicated violations, sorted.
    pub violations: Vec<Violation>,
}

impl ModelReport {
    /// `true` when every explored schedule satisfied every property.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The shared claim-loop sub-machine: one transition per atomic step.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Sub {
    /// About to load the claim counter.
    Load,
    /// Loaded `cur`; about to CAS `cur → cur + 1`.
    Cas { cur: u8 },
    /// Claimed `ticket`; about to run its chunk.
    Run { ticket: u8 },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Lane {
    Parked,
    /// Holds a copy of the published job (`d`, `base`) like a real worker.
    Active {
        d: u8,
        base: u8,
        sub: Sub,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Boss {
    /// About to publish dispatch `d` (no job visible to workers).
    Publish {
        d: u8,
    },
    /// Dispatch `d` published with claim base `base`; running the
    /// caller-lane claim loop.
    Work {
        d: u8,
        base: u8,
        sub: Sub,
    },
    /// Claim loop exhausted; waiting for `remaining == 0`.
    WaitDone {
        d: u8,
        base: u8,
    },
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    boss: Boss,
    lanes: Vec<Lane>,
    claim: u8,
    remaining: i16,
    /// Per-index run counts, all dispatches flattened, saturated at 2.
    runs: Vec<u8>,
}

/// Offset of dispatch `d`'s index range inside [`State::runs`].
fn run_offset(cfg: &ModelConfig, d: u8) -> usize {
    cfg.dispatches[..d as usize]
        .iter()
        .map(|disp| disp.n as usize)
        .sum()
}

/// Marks one claimed chunk as executed and retires its ticket. Returns
/// `false` (prune the branch) when an index double-ran.
fn apply_run(
    cfg: &ModelConfig,
    st: &mut State,
    d: u8,
    ticket: u8,
    violations: &mut FxHashSet<Violation>,
) -> bool {
    let disp = cfg.dispatches[d as usize];
    let lo = ticket as usize * disp.chunk as usize;
    let hi = (lo + disp.chunk as usize).min(disp.n as usize);
    let off = run_offset(cfg, d);
    let mut ok = true;
    for idx in lo..hi {
        if cfg.panic_at == Some((d, idx as u8)) {
            // The closure panics here: the rest of the chunk is abandoned,
            // but the ticket below still retires (catch_unwind + countdown).
            break;
        }
        let slot = &mut st.runs[off + idx];
        if *slot >= 1 {
            violations.insert(Violation::DoubleRun {
                dispatch: d,
                index: idx as u8,
            });
            ok = false;
        }
        *slot = (*slot + 1).min(2);
    }
    st.remaining -= 1;
    ok
}

/// One claim-loop step for an actor holding job `(d, base)` in sub-state
/// `sub`. Returns the successor sub-state, `None` when the claim range is
/// exhausted (the actor leaves the loop), and pushes the mutated state via
/// `emit` unless the branch was pruned by a double-run.
fn step_claim(
    cfg: &ModelConfig,
    st: &State,
    d: u8,
    base: u8,
    sub: Sub,
    violations: &mut FxHashSet<Violation>,
) -> Option<(State, Option<Sub>)> {
    let tickets = cfg.dispatches[d as usize].tickets();
    let mut next = st.clone();
    let succ = match sub {
        Sub::Load => {
            let cur = next.claim;
            // `cur < base` is unreachable under the faithful protocol
            // (monotone counter); buggy variants can rewind the counter, in
            // which case the real claim loop's bound check still exits.
            if cur < base || cur >= base + tickets {
                None
            } else {
                Some(Sub::Cas { cur })
            }
        }
        Sub::Cas { cur } => {
            if cfg.bug == Bug::NonAtomicClaim {
                // Blind increment: succeeds regardless of interleaving.
                next.claim = cur + 1;
                Some(Sub::Run { ticket: cur - base })
            } else if next.claim == cur {
                next.claim = cur + 1;
                Some(Sub::Run { ticket: cur - base })
            } else {
                // CAS failed; reload.
                Some(Sub::Load)
            }
        }
        Sub::Run { ticket } => {
            if !apply_run(cfg, &mut next, d, ticket, violations) {
                return None; // double-run: record and prune this branch
            }
            Some(Sub::Load)
        }
    };
    Some((next, succ))
}

fn initial(cfg: &ModelConfig) -> State {
    State {
        boss: Boss::Publish { d: 0 },
        lanes: vec![Lane::Parked; cfg.extra_lanes],
        claim: 0,
        remaining: 0,
        runs: vec![0; cfg.dispatches.iter().map(|d| d.n as usize).sum()],
    }
}

/// All successor states of `st` (one per enabled atomic transition).
fn successors(cfg: &ModelConfig, st: &State, violations: &mut FxHashSet<Violation>) -> Vec<State> {
    let mut out = Vec::new();

    // Dispatcher transition.
    match st.boss {
        Boss::Publish { d } => {
            let mut next = st.clone();
            if cfg.bug == Bug::ResetCounter {
                next.claim = 0;
            }
            let base = next.claim;
            next.remaining = cfg.dispatches[d as usize].tickets() as i16;
            next.boss = Boss::Work {
                d,
                base,
                sub: Sub::Load,
            };
            out.push(next);
        }
        Boss::Work { d, base, sub } => {
            if let Some((mut next, succ)) = step_claim(cfg, st, d, base, sub, violations) {
                next.boss = match succ {
                    Some(sub) => Boss::Work { d, base, sub },
                    None => Boss::WaitDone { d, base },
                };
                out.push(next);
            }
        }
        Boss::WaitDone { d, .. } => {
            // The condvar wait: enabled only once every ticket retired.
            if st.remaining == 0 {
                let mut next = st.clone();
                next.boss = if (d as usize + 1) < cfg.dispatches.len() {
                    Boss::Publish { d: d + 1 }
                } else {
                    Boss::Done
                };
                out.push(next);
            }
        }
        Boss::Done => {}
    }

    // Worker-lane transitions.
    for (i, lane) in st.lanes.iter().enumerate() {
        match *lane {
            Lane::Parked => {
                // A parked lane can take the job while it is published
                // (between publish and the dispatcher clearing it).
                if let Boss::Work { d, base, .. } | Boss::WaitDone { d, base } = st.boss {
                    let mut next = st.clone();
                    next.lanes[i] = Lane::Active {
                        d,
                        base,
                        sub: Sub::Load,
                    };
                    out.push(next);
                }
            }
            Lane::Active { d, base, sub } => {
                if let Some((mut next, succ)) = step_claim(cfg, st, d, base, sub, violations) {
                    next.lanes[i] = match succ {
                        Some(sub) => Lane::Active { d, base, sub },
                        None => Lane::Parked,
                    };
                    out.push(next);
                }
            }
        }
    }

    out
}

/// Exactly-once check at a terminal `Done` state.
fn final_check(cfg: &ModelConfig, st: &State, violations: &mut FxHashSet<Violation>) {
    for (d, disp) in cfg.dispatches.iter().enumerate() {
        let off = run_offset(cfg, d as u8);
        for idx in 0..disp.n {
            let exempt = match cfg.panic_at {
                Some((pd, pidx)) => {
                    pd == d as u8 && idx / disp.chunk == pidx / disp.chunk && idx >= pidx
                }
                None => false,
            };
            if st.runs[off + idx as usize] == 0 && !exempt {
                violations.insert(Violation::LostIndex {
                    dispatch: d as u8,
                    index: idx,
                });
            }
        }
    }
}

/// Exhaustively explores every schedule of `cfg` and reports all property
/// violations found on any of them.
///
/// # Panics
///
/// Panics when the configuration itself is malformed (a dispatch with
/// `chunk == 0`, or a total index count that overflows the `u8` ticket
/// space).
pub fn explore(cfg: &ModelConfig) -> ModelReport {
    let total: usize = cfg.dispatches.iter().map(|d| d.n as usize).sum();
    assert!(total <= u8::MAX as usize, "model too large for u8 tickets");
    assert!(
        cfg.dispatches.iter().all(|d| d.chunk >= 1),
        "chunk must be at least 1"
    );

    let mut violations: FxHashSet<Violation> = FxHashSet::default();
    let mut seen: FxHashSet<State> = FxHashSet::default();
    let mut stack = vec![initial(cfg)];
    while let Some(st) = stack.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        let succs = successors(cfg, &st, &mut violations);
        if succs.is_empty() {
            if matches!(st.boss, Boss::Done) {
                final_check(cfg, &st, &mut violations);
            } else {
                violations.insert(Violation::Hang);
            }
        } else {
            stack.extend(succs);
        }
    }

    let mut violations: Vec<Violation> = violations.into_iter().collect();
    violations.sort();
    ModelReport {
        states: seen.len(),
        violations,
    }
}
