//! Engine-level behaviour: stepping, budgets, counting mode, determinism,
//! directedness.

use tcsm_core::*;
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};
use tcsm_graph::{Direction, QueryGraphBuilder, TemporalGraphBuilder, EDGE_LABEL_ANY};

fn workload() -> (tcsm_graph::QueryGraph, tcsm_graph::TemporalGraph, i64) {
    let g = SUPERUSER.generate(21, 0.3);
    let delta = SUPERUSER.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(6, 0.5, delta / 2, 77).expect("query");
    (q, g, delta)
}

#[test]
fn step_equals_run() {
    let (q, g, delta) = workload();
    let mut e1 = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let all = e1.run();
    let mut e2 = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let mut stepped = Vec::new();
    while e2.step(&mut stepped) {}
    assert_eq!(all, stepped);
    assert_eq!(e1.stats(), e2.stats());
    assert_eq!(e2.remaining_events(), 0);
}

#[test]
fn counting_mode_matches_collecting_mode() {
    let (q, g, delta) = workload();
    let mut collecting = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let events = collecting.run();
    let cfg = EngineConfig {
        collect_matches: false,
        ..Default::default()
    };
    let mut counting = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let s = *counting.run_counting();
    assert_eq!(
        s.occurred as usize,
        events
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred)
            .count()
    );
    assert_eq!(
        s.expired as usize,
        events
            .iter()
            .filter(|m| m.kind == MatchKind::Expired)
            .count()
    );
}

#[test]
fn runs_are_deterministic() {
    let (q, g, delta) = workload();
    let runs: Vec<Vec<MatchEvent>> = (0..2)
        .map(|_| {
            TcmEngine::new(&q, &g, delta, Default::default())
                .unwrap()
                .run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn per_event_budget_halts_gracefully() {
    let (q, g, delta) = workload();
    let cfg = EngineConfig {
        budget: SearchBudget {
            max_nodes_per_event: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let _ = e.run();
    assert!(e.stats().budget_exhausted);
}

#[test]
fn match_budget_caps_reported_embeddings() {
    // Single-edge query over many parallel edges: every arrival matches.
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(0);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let mut gb = TemporalGraphBuilder::new();
    let v = gb.vertices(2, 0);
    for t in 1..=20 {
        gb.edge(v, v + 1, t);
    }
    let g = gb.build().unwrap();
    let cfg = EngineConfig {
        budget: SearchBudget {
            max_matches_per_event: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, 100, cfg).unwrap();
    let _ = e.run();
    // The budget halts the run rather than over-reporting.
    assert!(e.stats().budget_exhausted);
    assert!(e.stats().occurred <= 2);
}

#[test]
fn directed_mode_restricts_matches() {
    // Query a →(dir) b; data has one edge each way.
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(1);
    qb.edge_full(a, b, Direction::AToB, EDGE_LABEL_ANY);
    let q = qb.build().unwrap();
    let mut gb = TemporalGraphBuilder::new();
    let v0 = gb.vertex(0);
    let v1 = gb.vertex(1);
    gb.edge(v0, v1, 1); // 0 → 1: label-correct AND direction-correct
    gb.edge(v1, v0, 2); // 1 → 0: labels force a↦v0 but direction is wrong
    let g = gb.build().unwrap();

    let undirected = EngineConfig::default();
    let mut e = TcmEngine::new(&q, &g, 100, undirected).unwrap();
    let occ_undirected = e
        .run()
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .count();
    assert_eq!(occ_undirected, 2);

    let directed = EngineConfig {
        directed: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, 100, directed).unwrap();
    let occ_directed = e
        .run()
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .count();
    assert_eq!(occ_directed, 1);
}

/// A bursty stream: several arrivals per timestamp, so delta batches are
/// non-trivial and expirations collide with same-instant arrivals.
fn bursty_workload() -> (tcsm_graph::QueryGraph, tcsm_graph::TemporalGraph, i64) {
    let (q, g0, _) = workload();
    let mut b = TemporalGraphBuilder::new();
    for &l in g0.labels() {
        b.vertex(l);
    }
    // Re-time the stream onto a coarse grid: 3 edges share each tick.
    for (i, e) in g0.edges().iter().enumerate() {
        b.edge_full(e.src, e.dst, 1 + (i as i64 / 3), e.label);
    }
    let g = b.build().unwrap();
    (q, g, 12)
}

#[test]
fn batched_equals_serial_on_bursty_stream() {
    let (q, g, delta) = bursty_workload();
    for preset in [
        AlgorithmPreset::Tcm,
        AlgorithmPreset::TcmNoPruning,
        AlgorithmPreset::TcmNoFilter,
        AlgorithmPreset::SymBiPostCheck,
    ] {
        let cfg = EngineConfig {
            preset,
            ..Default::default()
        };
        let mut serial = TcmEngine::new(&q, &g, delta, cfg).unwrap();
        let mut expect = serial.run();
        let mut batched = TcmEngine::new(&q, &g, delta, cfg).unwrap();
        let mut got = batched.run_batched();
        assert_eq!(
            serial.stats().occurred,
            batched.stats().occurred,
            "occurred diverged ({preset:?})"
        );
        assert_eq!(serial.stats().expired, batched.stats().expired);
        let key = |m: &MatchEvent| (m.kind, m.at, m.embedding.clone());
        expect.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(expect, got, "match multiset diverged ({preset:?})");
        assert!(batched.stats().batches > 0);
        assert!(batched.stats().batches < batched.stats().events);
    }
}

#[test]
fn batching_config_flag_routes_run() {
    let (q, g, delta) = bursty_workload();
    let cfg = EngineConfig {
        batching: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let _ = e.run();
    assert!(e.stats().batches > 0, "run() must take the batched path");
    let mut e = TcmEngine::new(&q, &g, delta, EngineConfig::default()).unwrap();
    let _ = e.run();
    assert_eq!(e.stats().batches, 0, "default run() stays serial");
}

#[test]
fn batched_step_consistency_after_every_batch() {
    let (q, g, delta) = bursty_workload();
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let mut out = Vec::new();
    while e.step_batch(&mut out) {
        e.check_consistency();
    }
    assert_eq!(e.remaining_events(), 0);
    assert_eq!(e.dcs_edges(), 0);
    assert_eq!(e.dcs_vertices(), 0);
}

#[test]
fn same_pair_expire_and_insert_in_one_instant() {
    // Regression (half-applied-batch hazard): at t = 4 the only (v0, v1)
    // edge expires — its bucket dies — and two new (v0, v1) edges arrive in
    // the same instant's arrival batch, immediately after the delete batch
    // recycled nothing yet. The filter/DCS must never observe the removal
    // and insertions interleaved.
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(1);
    let c = qb.vertex(0);
    let e0 = qb.edge(a, b);
    let e1 = qb.edge(b, c);
    qb.precede(e0, e1);
    let q = qb.build().unwrap();
    let mut gb = TemporalGraphBuilder::new();
    let v0 = gb.vertex(0);
    let v1 = gb.vertex(1);
    let v2 = gb.vertex(0);
    gb.edge(v0, v1, 1); // expires at 4 (δ = 3)
    gb.edge(v0, v1, 4); // same pair, arrives the same instant
    gb.edge(v0, v1, 4);
    gb.edge(v1, v2, 5);
    gb.edge(v1, v2, 2);
    let g = gb.build().unwrap();
    let delta = 3;
    let mut serial = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let mut expect = serial.run();
    let mut batched = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let mut out = Vec::new();
    while batched.step_batch(&mut out) {
        batched.check_consistency();
    }
    let key = |m: &MatchEvent| (m.kind, m.at, m.embedding.clone());
    expect.sort_by_key(key);
    out.sort_by_key(key);
    assert_eq!(expect, out);
    assert!(serial.stats().occurred > 0, "workload must produce matches");
}

#[test]
fn interleaving_step_and_step_batch_is_exact() {
    // Regression: a step_batch() call landing mid-batch (after serial
    // step() calls cut into a same-timestamp group) must not process a
    // *partial* group as if it were complete — it finishes the group
    // serially, so any interleaving reproduces the pure-serial stream.
    let (q, g, delta) = bursty_workload();
    let mut serial = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let expect = serial.run();
    for serial_prefix in [1usize, 2, 3, 5, 7] {
        let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
        let mut got = Vec::new();
        for _ in 0..serial_prefix {
            assert!(e.step(&mut got));
        }
        while e.step_batch(&mut got) {}
        assert_eq!(
            expect, got,
            "interleaved run diverged (serial prefix {serial_prefix})"
        );
    }
}

#[test]
fn batched_counting_matches_serial_counting() {
    let (q, g, delta) = bursty_workload();
    let serial_cfg = EngineConfig {
        collect_matches: false,
        ..Default::default()
    };
    let batched_cfg = EngineConfig {
        batching: true,
        ..serial_cfg
    };
    let mut s = TcmEngine::new(&q, &g, delta, serial_cfg).unwrap();
    let s = *s.run_counting();
    let mut b = TcmEngine::new(&q, &g, delta, batched_cfg).unwrap();
    let b = *b.run_counting();
    assert_eq!(s.occurred, b.occurred);
    assert_eq!(s.expired, b.expired);
    assert_eq!(s.events, b.events);
}

#[test]
fn dcs_stats_are_tracked() {
    let (q, g, delta) = workload();
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let _ = e.run();
    let s = e.stats();
    assert!(s.peak_dcs_edges > 0);
    assert!(s.peak_dcs_vertices > 0);
    assert!(s.avg_dcs_edges() > 0.0);
    assert!(s.avg_dcs_edges() <= s.peak_dcs_edges as f64);
    assert_eq!(s.events, 2 * g.num_edges() as u64);
}

#[test]
fn empty_stream_is_fine() {
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(0);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let g = TemporalGraphBuilder::new().build().unwrap();
    // No vertices at all: engine still runs to completion.
    let mut e = TcmEngine::new(&q, &g, 5, Default::default()).unwrap();
    assert!(e.run().is_empty());
    assert_eq!(e.stats().events, 0);
}

#[test]
fn label_mismatch_query_finds_nothing() {
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(9); // label absent from the data
    let b = qb.vertex(9);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let (_, g, delta) = workload();
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    assert!(e.run().is_empty());
    assert_eq!(e.stats().occurred, 0);
}

#[test]
fn deterministic_clock_phase_timings_bound_wall_time() {
    use std::sync::Arc;
    use tcsm_telemetry::{Clock, ManualClock, Phase, TraceLevel};
    let (q, g, delta) = workload();
    let clock = Arc::new(ManualClock::new(7));
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    e.set_trace(TraceLevel::Counters, clock.clone());
    let baseline = e.run();
    // Phases never overlap, so their summed durations are bounded by the
    // clock's total advance (the deterministic "wall time").
    let total = e.telemetry().total_us();
    assert!(total > 0, "counters level must record the hot phases");
    let wall = clock.micros();
    assert!(total <= wall, "phase sum {total} exceeds wall {wall}");
    // The engine reads time only between events, so with a fixed-tick
    // clock the recorded totals are a pure function of the run: a second
    // identical run reproduces them exactly.
    let clock2 = Arc::new(ManualClock::new(7));
    let mut e2 = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    e2.set_trace(TraceLevel::Counters, clock2.clone());
    assert_eq!(e2.run(), baseline);
    assert_eq!(e2.telemetry().total_us(), total);
    for phase in Phase::ALL {
        let a = e.telemetry().histogram(phase).map(|h| (h.count(), h.sum()));
        let b = e2
            .telemetry()
            .histogram(phase)
            .map(|h| (h.count(), h.sum()));
        assert_eq!(a, b, "{phase:?} histogram diverged between runs");
    }
}

#[test]
fn trace_off_records_nothing_and_changes_nothing() {
    use std::sync::Arc;
    use tcsm_telemetry::{ManualClock, TraceLevel};
    let (q, g, delta) = workload();
    let mut plain = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let expect = plain.run();
    let clock = Arc::new(ManualClock::new(7));
    let mut off = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    off.set_trace(TraceLevel::Off, clock.clone());
    assert_eq!(off.run(), expect, "tracing must not perturb semantics");
    assert_eq!(off.telemetry().total_us(), 0, "off level records nothing");
    assert_eq!(
        tcsm_telemetry::Clock::micros(&*clock),
        0,
        "off never reads the clock"
    );
    assert_eq!(plain.stats().semantic(), off.stats().semantic());
}
