//! Engine-level behaviour: stepping, budgets, counting mode, determinism,
//! directedness.

use tcsm_core::*;
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};
use tcsm_graph::{Direction, QueryGraphBuilder, TemporalGraphBuilder, EDGE_LABEL_ANY};

fn workload() -> (tcsm_graph::QueryGraph, tcsm_graph::TemporalGraph, i64) {
    let g = SUPERUSER.generate(21, 0.3);
    let delta = SUPERUSER.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(6, 0.5, delta / 2, 77).expect("query");
    (q, g, delta)
}

#[test]
fn step_equals_run() {
    let (q, g, delta) = workload();
    let mut e1 = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let all = e1.run();
    let mut e2 = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let mut stepped = Vec::new();
    while e2.step(&mut stepped) {}
    assert_eq!(all, stepped);
    assert_eq!(e1.stats(), e2.stats());
    assert_eq!(e2.remaining_events(), 0);
}

#[test]
fn counting_mode_matches_collecting_mode() {
    let (q, g, delta) = workload();
    let mut collecting = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let events = collecting.run();
    let cfg = EngineConfig {
        collect_matches: false,
        ..Default::default()
    };
    let mut counting = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let s = *counting.run_counting();
    assert_eq!(
        s.occurred as usize,
        events
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred)
            .count()
    );
    assert_eq!(
        s.expired as usize,
        events
            .iter()
            .filter(|m| m.kind == MatchKind::Expired)
            .count()
    );
}

#[test]
fn runs_are_deterministic() {
    let (q, g, delta) = workload();
    let runs: Vec<Vec<MatchEvent>> = (0..2)
        .map(|_| {
            TcmEngine::new(&q, &g, delta, Default::default())
                .unwrap()
                .run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn per_event_budget_halts_gracefully() {
    let (q, g, delta) = workload();
    let cfg = EngineConfig {
        budget: SearchBudget {
            max_nodes_per_event: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let _ = e.run();
    assert!(e.stats().budget_exhausted);
}

#[test]
fn match_budget_caps_reported_embeddings() {
    // Single-edge query over many parallel edges: every arrival matches.
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(0);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let mut gb = TemporalGraphBuilder::new();
    let v = gb.vertices(2, 0);
    for t in 1..=20 {
        gb.edge(v, v + 1, t);
    }
    let g = gb.build().unwrap();
    let cfg = EngineConfig {
        budget: SearchBudget {
            max_matches_per_event: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, 100, cfg).unwrap();
    let _ = e.run();
    // The budget halts the run rather than over-reporting.
    assert!(e.stats().budget_exhausted);
    assert!(e.stats().occurred <= 2);
}

#[test]
fn directed_mode_restricts_matches() {
    // Query a →(dir) b; data has one edge each way.
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(1);
    qb.edge_full(a, b, Direction::AToB, EDGE_LABEL_ANY);
    let q = qb.build().unwrap();
    let mut gb = TemporalGraphBuilder::new();
    let v0 = gb.vertex(0);
    let v1 = gb.vertex(1);
    gb.edge(v0, v1, 1); // 0 → 1: label-correct AND direction-correct
    gb.edge(v1, v0, 2); // 1 → 0: labels force a↦v0 but direction is wrong
    let g = gb.build().unwrap();

    let undirected = EngineConfig::default();
    let mut e = TcmEngine::new(&q, &g, 100, undirected).unwrap();
    let occ_undirected = e
        .run()
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .count();
    assert_eq!(occ_undirected, 2);

    let directed = EngineConfig {
        directed: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, 100, directed).unwrap();
    let occ_directed = e
        .run()
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .count();
    assert_eq!(occ_directed, 1);
}

#[test]
fn dcs_stats_are_tracked() {
    let (q, g, delta) = workload();
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    let _ = e.run();
    let s = e.stats();
    assert!(s.peak_dcs_edges > 0);
    assert!(s.peak_dcs_vertices > 0);
    assert!(s.avg_dcs_edges() > 0.0);
    assert!(s.avg_dcs_edges() <= s.peak_dcs_edges as f64);
    assert_eq!(s.events, 2 * g.num_edges() as u64);
}

#[test]
fn empty_stream_is_fine() {
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(0);
    let b = qb.vertex(0);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let g = TemporalGraphBuilder::new().build().unwrap();
    // No vertices at all: engine still runs to completion.
    let mut e = TcmEngine::new(&q, &g, 5, Default::default()).unwrap();
    assert!(e.run().is_empty());
    assert_eq!(e.stats().events, 0);
}

#[test]
fn label_mismatch_query_finds_nothing() {
    let mut qb = QueryGraphBuilder::new();
    let a = qb.vertex(9); // label absent from the data
    let b = qb.vertex(9);
    qb.edge(a, b);
    let q = qb.build().unwrap();
    let (_, g, delta) = workload();
    let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
    assert!(e.run().is_empty());
    assert_eq!(e.stats().occurred, 0);
}
