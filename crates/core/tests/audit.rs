//! Negative-test corpus for the cross-crate invariant auditor, plus a
//! property suite proving the Deep audit passes on random streams.
//!
//! Each negative test seeds exactly one corruption through the
//! `#[doc(hidden)]` hooks — a desync no public API can produce — and
//! asserts the Deep audit reports it under its catalogued name (see
//! `tcsm_graph::audit`). If any of these stop failing, the auditor has
//! gone blind to that invariant.

use proptest::prelude::*;
use tcsm_core::{AuditLevel, EngineConfig, TcmEngine};
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};
use tcsm_graph::{QueryGraph, TemporalGraph};

fn workload() -> (QueryGraph, TemporalGraph, i64) {
    let g = SUPERUSER.generate(21, 0.3);
    let delta = SUPERUSER.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(6, 0.5, delta / 2, 77).expect("query");
    (q, g, delta)
}

/// An engine stepped halfway through the stream: live window, populated
/// bank membership, nonzero DCS support.
fn half_run_engine<'a>(q: &'a QueryGraph, g: &'a TemporalGraph, delta: i64) -> TcmEngine<'a> {
    let mut e = TcmEngine::new(q, g, delta, EngineConfig::default()).expect("engine");
    let total = e.remaining_events();
    let mut out = Vec::new();
    for _ in 0..total / 2 {
        assert!(e.step(&mut out));
    }
    e
}

fn names(e: &TcmEngine) -> Vec<&'static str> {
    e.audit_now(AuditLevel::Deep)
        .iter()
        .map(|v| v.name())
        .collect()
}

#[test]
fn audit_is_clean_before_any_corruption() {
    let (q, g, delta) = workload();
    let e = half_run_engine(&q, &g, delta);
    let out = e.audit_now(AuditLevel::Deep);
    assert!(out.is_empty(), "uncorrupted engine flagged: {out:?}");
}

#[test]
fn corrupted_dcs_counter_is_caught() {
    let (q, g, delta) = workload();
    let mut e = half_run_engine(&q, &g, delta);
    e.runtime_mut().dcs_mut().corrupt_counter(0, 0, 0);
    let names = names(&e);
    assert!(
        names
            .iter()
            .any(|n| ["dcs-counter", "dcs-slot-census", "dcs-live-census"].contains(n)),
        "bumped support counter not caught: {names:?}"
    );
}

#[test]
fn corrupted_d2_bit_is_caught() {
    let (q, g, delta) = workload();
    let mut e = half_run_engine(&q, &g, delta);
    e.runtime_mut().dcs_mut().corrupt_d2(0, 0);
    let names = names(&e);
    assert!(
        names.iter().any(|n| n.starts_with("dcs-d2")),
        "flipped d2 bit not caught: {names:?}"
    );
}

#[test]
fn unpinned_pad_lane_is_caught() {
    let (q, g, delta) = workload();
    let mut e = half_run_engine(&q, &g, delta);
    assert!(e.runtime_mut().bank_mut().corrupt_pad_lane(0, 0, 0));
    let names = names(&e);
    assert!(
        names.contains(&"filter-pad-lane"),
        "unpinned pad sentinel not caught: {names:?}"
    );
}

#[test]
fn desynced_membership_bitmap_is_caught() {
    let (q, g, delta) = workload();
    let mut e = half_run_engine(&q, &g, delta);
    assert!(
        e.runtime_mut().bank_mut().corrupt_membership_word(),
        "workload produced no bank members to corrupt"
    );
    let names = names(&e);
    assert!(
        names.contains(&"bank-page-census"),
        "cleared membership bit not caught: {names:?}"
    );
}

#[test]
fn desynced_pair_census_is_caught() {
    let (q, g, delta) = workload();
    let mut e = half_run_engine(&q, &g, delta);
    e.runtime_mut().bank_mut().corrupt_pair_census();
    let names = names(&e);
    assert!(
        names.contains(&"bank-pair-census"),
        "bumped pair count not caught: {names:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    /// Random profile streams across regimes (per-event vs batched) and
    /// thread widths, auditing at Deep after *every* event via the
    /// engine's own step-path hook: the incremental structures must stay
    /// indistinguishable from their from-scratch recomputation.
    #[test]
    fn deep_audit_passes_on_random_streams(
        seed in 0u64..1_000,
        scale_pct in 15u32..35,
        qseed in 0u64..1_000,
        threads in 0usize..3,
        batching in any::<bool>(),
    ) {
        let scale = scale_pct as f64 / 100.0;
        let g = SUPERUSER.generate(seed, scale);
        let delta = SUPERUSER.window_sizes(scale)[1];
        let qg = QueryGen::new(&g);
        let Some(q) = qg.generate(4, 0.5, delta / 2, qseed) else {
            return Ok(()); // no query embeddable at this seed; vacuous case
        };
        let cfg = EngineConfig { batching, threads, ..Default::default() };
        let mut e = TcmEngine::new(&q, &g, delta, cfg).expect("engine");
        e.set_audit(AuditLevel::Deep, 1);
        let mut out = Vec::new();
        if batching {
            while e.step_batch(&mut out) {}
        } else {
            while e.step(&mut out) {}
        }
        let leftover = e.audit_now(AuditLevel::Deep);
        prop_assert!(leftover.is_empty(), "final audit flagged: {leftover:?}");
    }
}
