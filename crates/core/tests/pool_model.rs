//! Gates for the [`tcsm_core::pool_model`] schedule explorer: the faithful
//! ticket protocol must pass exhaustively at small widths, and seeded
//! claim-protocol bugs must be caught — otherwise the checker proves
//! nothing about [`tcsm_core::pool`].

use tcsm_core::pool_model::{explore, Bug, Dispatch, ModelConfig, Violation};

fn cfg(extra_lanes: usize, dispatches: &[(u8, u8)], bug: Bug) -> ModelConfig {
    ModelConfig {
        extra_lanes,
        dispatches: dispatches
            .iter()
            .map(|&(n, chunk)| Dispatch { n, chunk })
            .collect(),
        bug,
        panic_at: None,
    }
}

#[test]
fn faithful_protocol_is_exhaustively_clean() {
    // 2–3 total lanes × small index counts × both chunk sizes × one or two
    // dispatches in sequence: every interleaving must run every index
    // exactly once and terminate.
    let mut explored = 0usize;
    for extra in [1, 2] {
        for n in 1..=4u8 {
            for chunk in [1, 2] {
                for dispatches in [vec![(n, chunk)], vec![(n, chunk), (n, chunk)]] {
                    let report = explore(&cfg(extra, &dispatches, Bug::None));
                    assert!(
                        report.clean(),
                        "extra={extra} dispatches={dispatches:?}: {:?}",
                        report.violations
                    );
                    explored += report.states;
                }
            }
        }
    }
    // Sanity: the explorer actually walked a nontrivial state space.
    assert!(
        explored > 1000,
        "suspiciously small exploration: {explored}"
    );
}

#[test]
fn non_atomic_claim_double_runs() {
    // Two lanes that both load the same counter value and blindly
    // increment claim the same ticket.
    let report = explore(&cfg(1, &[(2, 1)], Bug::NonAtomicClaim));
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleRun { .. })),
        "blind-increment claim must double-run a ticket: {:?}",
        report.violations
    );
}

#[test]
fn reset_counter_reintroduces_aba() {
    // A lane delayed between load and CAS across a publish boundary
    // re-claims a ticket of the previous dispatch once the counter is
    // reset — the exact ABA the monotone counter kills.
    let report = explore(&cfg(1, &[(2, 1), (2, 1)], Bug::ResetCounter));
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleRun { dispatch: 0, .. })),
        "counter reset must re-run an old dispatch's ticket: {:?}",
        report.violations
    );
}

#[test]
fn panic_mid_chunk_still_retires_the_chunk() {
    // A panic at index 1 (inside chunk 0 of a 4-index, chunk-2 dispatch)
    // abandons the rest of its chunk but must not hang the dispatcher or
    // double-run anything; all other indices still run exactly once.
    for extra in [1, 2] {
        let mut c = cfg(extra, &[(4, 2)], Bug::None);
        c.panic_at = Some((0, 1));
        let report = explore(&c);
        assert!(
            report.clean(),
            "extra={extra}: panic mid-chunk broke the protocol: {:?}",
            report.violations
        );
    }
}

#[test]
fn panic_on_last_ticket_does_not_hang() {
    // The panicking ticket is the one the dispatcher's remaining==0 wait
    // depends on last: the countdown must still reach zero.
    let mut c = cfg(1, &[(3, 1)], Bug::None);
    c.panic_at = Some((0, 2));
    let report = explore(&c);
    assert!(
        !report.violations.contains(&Violation::Hang),
        "panicking final ticket must still retire: {:?}",
        report.violations
    );
}
