//! # tcsm — Time-Constrained Continuous Subgraph Matching
//!
//! A from-scratch Rust implementation of **TCM** (Min, Jang, Park,
//! Giammarresi, Italiano, Han: *Time-Constrained Continuous Subgraph
//! Matching Using Temporal Information for Filtering and Backtracking*,
//! ICDE 2024), including every substrate the paper depends on and the
//! baselines its evaluation compares against.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `tcsm-graph` | temporal multigraphs, query graphs, windows, streams |
//! | [`dag`] | `tcsm-dag` | greedy query-DAG construction (Algorithm 2), ancestry |
//! | [`filter`] | `tcsm-filter` | max-min timestamps, TC-matchable-edge filter (§IV) |
//! | [`dcs`] | `tcsm-dcs` | SymBi's dynamic candidate space, TC-restricted |
//! | [`core`] | `tcsm-core` | the `TcmEngine` + `FindMatches` with §V pruning |
//! | [`service`] | `tcsm-service` | sharded multi-query service, shared per-shard windows |
//! | [`baselines`] | `tcsm-baselines` | oracle, RapidFlow-lite, Timing-join |
//! | [`datasets`] | `tcsm-datasets` | Table III profiles + query generator |
//!
//! ## Quickstart
//!
//! ```
//! use tcsm::prelude::*;
//!
//! // Temporal query: money moves a → b → c strictly forward in time.
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
//! let hop1 = qb.edge(a, b);
//! let hop2 = qb.edge(b, c);
//! qb.precede(hop1, hop2);
//! let query = qb.build().unwrap();
//!
//! // A tiny transaction stream.
//! let mut gb = TemporalGraphBuilder::new();
//! let v = gb.vertices(3, 0);
//! gb.edge(v, v + 1, 10);
//! gb.edge(v + 1, v + 2, 20);
//! let stream = gb.build().unwrap();
//!
//! let mut engine = TcmEngine::new(&query, &stream, 100, EngineConfig::default()).unwrap();
//! let matches = engine.run();
//! assert_eq!(matches.iter().filter(|m| m.kind == MatchKind::Occurred).count(), 1);
//! ```

pub use tcsm_baselines as baselines;
pub use tcsm_core as core;
pub use tcsm_dag as dag;
pub use tcsm_datasets as datasets;
pub use tcsm_dcs as dcs;
pub use tcsm_filter as filter;
pub use tcsm_graph as graph;
pub use tcsm_service as service;

/// The most common imports in one place.
pub mod prelude {
    pub use tcsm_core::{
        AlgorithmPreset, Embedding, EngineConfig, EngineStats, MatchEvent, MatchKind, SearchBudget,
        TcmEngine,
    };
    pub use tcsm_dag::{build_best_dag, Polarity, QueryDag};
    pub use tcsm_graph::{
        Direction, EventKind, EventQueue, QueryGraph, QueryGraphBuilder, TemporalGraph,
        TemporalGraphBuilder, TemporalOrder, Ts, WindowGraph, EDGE_LABEL_ANY,
    };
    pub use tcsm_service::{
        CollectedMatches, CollectingSink, CountingSink, MatchService, QueryId, RecoveryPolicy,
        ResultSink, ServiceConfig, ShardPolicy, SnapshotError,
    };
}
