//! # tcsm — Time-Constrained Continuous Subgraph Matching
//!
//! A from-scratch Rust implementation of **TCM** (Min, Jang, Park,
//! Giammarresi, Italiano, Han: *Time-Constrained Continuous Subgraph
//! Matching Using Temporal Information for Filtering and Backtracking*,
//! ICDE 2024), including every substrate the paper depends on and the
//! baselines its evaluation compares against.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `tcsm-graph` | temporal multigraphs, query graphs, windows, streams |
//! | [`dag`] | `tcsm-dag` | greedy query-DAG construction (Algorithm 2), ancestry |
//! | [`filter`] | `tcsm-filter` | max-min timestamps, TC-matchable-edge filter (§IV) |
//! | [`dcs`] | `tcsm-dcs` | SymBi's dynamic candidate space, TC-restricted |
//! | [`core`] | `tcsm-core` | the `TcmEngine` + `FindMatches` with §V pruning |
//! | [`service`] | `tcsm-service` | sharded multi-query service, shared per-shard windows |
//! | [`server`] | `tcsm-server` | `tcsm-serviced` network daemon, wire protocol, client |
//! | [`telemetry`] | `tcsm-telemetry` | phase tracing, latency histograms, metrics exposition |
//! | [`baselines`] | `tcsm-baselines` | oracle, RapidFlow-lite, Timing-join |
//! | [`datasets`] | `tcsm-datasets` | Table III profiles + query generator |
//!
//! ## Quickstart
//!
//! ```
//! use tcsm::prelude::*;
//!
//! // Temporal query: money moves a → b → c strictly forward in time.
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
//! let hop1 = qb.edge(a, b);
//! let hop2 = qb.edge(b, c);
//! qb.precede(hop1, hop2);
//! let query = qb.build().unwrap();
//!
//! // A tiny transaction stream.
//! let mut gb = TemporalGraphBuilder::new();
//! let v = gb.vertices(3, 0);
//! gb.edge(v, v + 1, 10);
//! gb.edge(v + 1, v + 2, 20);
//! let stream = gb.build().unwrap();
//!
//! let mut engine = TcmEngine::new(&query, &stream, 100, EngineConfig::default()).unwrap();
//! let matches = engine.run();
//! assert_eq!(matches.iter().filter(|m| m.kind == MatchKind::Occurred).count(), 1);
//! ```
//!
//! ## Serving queries over the network
//!
//! The [`server`] crate wraps the multi-query [`service`] in a daemon,
//! `tcsm-serviced`: clients connect over TCP, admit and retire standing
//! queries, and receive their match streams as framed deliveries.
//!
//! ```sh
//! cargo run --release -p tcsm-server --bin tcsm-serviced -- \
//!     --input crates/datasets/fixtures/mini-snap.txt --format snap \
//!     --shards 4 --checkpoint /tmp/tcsm-ckpt --autorun
//! ```
//!
//! Everything on the wire is a length-prefixed [`graph::codec`] frame
//! (`TCSM` magic, format version, kind byte, FNV-1a checksum): requests
//! carry a client sequence number and an op tag (admit / retire / query
//! stats / service stats / step / resubscribe / checkpoint / shutdown),
//! responses echo both, typed error frames report refused or malformed
//! requests without ever killing the daemon, and unsolicited delivery
//! frames stream each query's match events to the connection that
//! admitted it. A dead subscriber is auto-retired without disturbing
//! anyone else; shutdown can checkpoint the full service state, and a
//! daemon restarted with `--restore` resumes the exact match-stream
//! suffix, with clients re-attaching via the resubscribe op. The frame
//! grammar and payload layouts live on [`server`]'s crate docs and its
//! `wire` module; the loopback [`server::Client`] is both the test
//! harness and a minimal embedding API.
//!
//! ## Observability
//!
//! The [`telemetry`] crate times the pipeline's hot phases — queue pop,
//! filter-bank update, DCS apply, the `FindMatches` sweep, plus
//! checkpoint/restore and pool dispatch — into log-bucketed latency
//! histograms (bucket scheme and error bound on [`telemetry`]'s crate
//! docs). Tracing is selected per process:
//!
//! * `TCSM_TRACE=off` (default) — disabled; each instrumented site costs
//!   a single branch and semantics are untouched (the differential suites
//!   run byte-identically at every level);
//! * `TCSM_TRACE=counters` — per-phase latency histograms;
//! * `TCSM_TRACE=spans` — histograms plus a bounded span ring and
//!   pluggable subscribers;
//! * `TCSM_SLOW_EVENT_US=N` — any phase span at least `N` µs long logs a
//!   structured `tcsm-slow` line on stderr (any level except `off`).
//!
//! Timing is *observational only*: it never enters
//! [`EngineStats`](core::EngineStats) semantics or checkpoint bytes.
//! The daemon exposes everything as Prometheus-style text — per-service,
//! per-shard (`scope="shard0"`), and per-query (`scope="q3"`) phase
//! quantiles plus the service counters — via the `metrics` wire op
//! ([`server::Client::metrics`]) and, with `--metrics-addr HOST:PORT`, a
//! plaintext TCP endpoint serving one exposition per connection:
//!
//! ```sh
//! TCSM_TRACE=counters cargo run --release -p tcsm-server --bin tcsm-serviced -- \
//!     --input crates/datasets/fixtures/mini-snap.txt --metrics-addr 127.0.0.1:9184 &
//! nc 127.0.0.1 9184   # one scrape, parseable by telemetry::parse_exposition
//! ```

pub use tcsm_baselines as baselines;
pub use tcsm_core as core;
pub use tcsm_dag as dag;
pub use tcsm_datasets as datasets;
pub use tcsm_dcs as dcs;
pub use tcsm_filter as filter;
pub use tcsm_graph as graph;
pub use tcsm_server as server;
pub use tcsm_service as service;
pub use tcsm_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use tcsm_core::{
        AlgorithmPreset, Embedding, EngineConfig, EngineStats, MatchEvent, MatchKind, SearchBudget,
        TcmEngine,
    };
    pub use tcsm_dag::{build_best_dag, Polarity, QueryDag};
    pub use tcsm_graph::{
        Direction, EventKind, EventQueue, QueryGraph, QueryGraphBuilder, TemporalGraph,
        TemporalGraphBuilder, TemporalOrder, Ts, WindowGraph, EDGE_LABEL_ANY,
    };
    pub use tcsm_service::{
        CollectedMatches, CollectingSink, CountingSink, DiscardSink, MatchService, QueryId,
        RecoveryPolicy, ResultSink, ServiceConfig, ShardPolicy, SinkClosed, SnapshotError,
    };
}
