//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Exposes the two marker traits plus the derive macros. The derives are
//! no-ops, so deriving the traits does not implement them — which is fine
//! because nothing in the workspace bounds on them yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
