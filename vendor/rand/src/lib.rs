//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Implements exactly the surface the workspace uses: a seedable `StdRng`
//! and the `Rng` convenience methods `gen`, `gen_range`, `gen_bool`. The
//! generator is SplitMix64 — deterministic per seed, statistically fine for
//! synthetic dataset generation, *not* the upstream ChaCha12 stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// The user-facing convenience trait (auto-implemented for every source).
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in the given range (modulo sampling; the tiny bias is
    /// irrelevant for synthetic data generation).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for the standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..17);
            assert!(x < 17);
            let y: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }
}
