//! No-op `Serialize` / `Deserialize` derives (see `vendor/README.md`).
//!
//! The workspace derives the serde traits on its value types to keep the
//! public API future-proof, but nothing serializes through serde in this
//! offline build, so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
