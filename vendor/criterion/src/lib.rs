//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the group/bench/iter surface the workspace benches use and
//! actually measures: each benchmark runs a calibrated number of iterations
//! per sample, collects `sample_size` samples, and reports the **median
//! ns/iter**. Results are printed and appended as JSON to
//! `target/criterion-stub/<group>.json` (override the directory with
//! `CRITERION_STUB_DIR`) so perf trajectories can be committed.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::Instant;

/// Identifier `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Bare id from a string.
    pub fn from_str_id(id: impl Into<String>) -> BenchmarkId {
        BenchmarkId { id: id.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId::from_str_id(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId::from_str_id(s)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Iterations per sample (calibrated by the harness).
    iters: u64,
    /// Elapsed nanoseconds of the last `iter` call.
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub id: String,
    pub median_ns_per_iter: f64,
    pub min_ns_per_iter: f64,
    pub samples: usize,
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Vec<Measurement>)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
            measurements: Vec::new(),
        }
    }

    fn record(&mut self, group: String, measurements: Vec<Measurement>) {
        let out_dir = std::env::var("CRITERION_STUB_DIR")
            .unwrap_or_else(|_| "target/criterion-stub".to_string());
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", group);
        json.push_str("  \"benches\": {\n");
        for (i, m) in measurements.iter().enumerate() {
            let comma = if i + 1 == measurements.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    \"{}\": {{ \"median_ns_per_iter\": {:.1}, \"min_ns_per_iter\": {:.1}, \"samples\": {} }}{}",
                m.id, m.median_ns_per_iter, m.min_ns_per_iter, m.samples, comma
            );
        }
        json.push_str("  }\n}\n");
        if std::fs::create_dir_all(&out_dir).is_ok() {
            let path = format!("{}/{}.json", out_dir, group.replace('/', "_"));
            let _ = std::fs::write(&path, &json);
            eprintln!("(criterion-stub wrote {path})");
        }
        self.results.push((group, measurements));
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let m = run_bench(&self.name, &id.id, self.sample_size, |b| routine(b, input));
        self.measurements.push(m);
        self
    }

    /// Benchmarks a closure without input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let m = run_bench(&self.name, &id.id, self.sample_size, |b| routine(b));
        self.measurements.push(m);
        self
    }

    /// Finishes the group, printing and persisting its results.
    pub fn finish(self) {
        let BenchmarkGroup {
            c,
            name,
            measurements,
            ..
        } = self;
        c.record(name, measurements);
    }
}

fn run_bench(
    group: &str,
    id: &str,
    sample_size: usize,
    mut routine: impl FnMut(&mut Bencher),
) -> Measurement {
    // Calibration: find an iteration count that takes ≥ ~10ms per sample
    // (or accept 1 iteration for slow routines).
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    routine(&mut b); // warm-up + first timing
    let mut iters = 1u64;
    while b.elapsed_ns < 10_000_000 && iters < 1 << 20 {
        iters *= 2;
        b.iters = iters;
        routine(&mut b);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        routine(&mut b);
        per_iter.push(b.elapsed_ns as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    println!(
        "{group}/{id}: median {median:.1} min {min:.1} ns/iter ({sample_size} samples × {iters} iters)"
    );
    Measurement {
        id: id.to_string(),
        median_ns_per_iter: median,
        min_ns_per_iter: min,
        samples: sample_size,
    }
}

/// Declares the group-runner functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub_selftest");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let group = g;
        group.finish();
        let (_, ms) = &c.results[0];
        assert_eq!(ms.len(), 1);
        assert!(ms[0].median_ns_per_iter > 0.0);
    }
}
