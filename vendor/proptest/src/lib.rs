//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, `prop::collection::vec`, [`any`], [`ProptestConfig`],
//! and the `prop_assert*` macros.
//!
//! Each test runs `config.cases` random cases from a seed derived from the
//! test's name (deterministic run-to-run). There is **no shrinking** — a
//! failure reports the case index so it can be replayed under a debugger by
//! re-running the same binary.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 source used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (we use the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runner configuration (struct-update compatible with upstream usage).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; the stub never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            fork: false,
        }
    }
}

impl ProptestConfig {
    /// Applies the `PROPTEST_CASES` environment override (same contract as
    /// upstream proptest): when set to a positive integer it replaces the
    /// per-test `cases` value, so CI can deepen the whole suite without
    /// editing sources. Invalid values are ignored.
    pub fn with_env_overrides(mut self) -> ProptestConfig {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                if n > 0 {
                    self.cases = n;
                }
            }
        }
        self
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` module tree mirrored from upstream.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification for [`vec`]: a fixed size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a random length.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Soft assertion: fails the current case without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} — {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($a), ::std::stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($a), ::std::stringify!($b),
                ::std::format!($($fmt)+), a, b
            ));
        }
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($a),
                ::std::stringify!($b),
                a
            ));
        }
    }};
}

/// The test-defining macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_law(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    // Doc comments (which expand to `#[doc = ...]`) may precede each entry,
    // but the `#[test]` attribute itself stays a *required* literal so a
    // forgotten one is still a compile error, never a silently-skipped test.
    (($cfg:expr); $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig =
                $crate::ProptestConfig::with_env_overrides($cfg);
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed:\n{}",
                        case + 1, config.cases, stringify!($name), msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..5, 10u32..12), v in prop::collection::vec(0i64..4, 2..6)) {
            prop_assert!(a < 5);
            prop_assert!(b == 10 || b == 11);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_and_map(x in (0u32..3).prop_map(|x| x * 10), flag in any::<bool>()) {
            prop_assert!(x == 0 || x == 10 || x == 20, "x = {}", x);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn prop_assert_returns_err() {
        fn body(x: usize) -> Result<(), String> {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        }
        assert!(body(3).is_err());
        assert!(body(101).is_ok());
    }
}
