//! Shared generators for the cross-crate integration/property tests.

use proptest::prelude::*;
use tcsm::prelude::*;

/// A random temporal multigraph: few vertices, small label alphabet,
/// duplicate timestamps and parallel edges allowed — deliberately nastier
/// than the dataset generators.
#[allow(dead_code)]
pub fn arb_graph() -> impl Strategy<Value = TemporalGraph> {
    (
        3usize..7,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..24, 0u32..2), 4..18),
        prop::collection::vec(0u32..2, 7),
    )
        .prop_map(|(n, edges, labels)| {
            let mut b = TemporalGraphBuilder::new();
            for &l in labels.iter().take(n) {
                b.vertex(l);
            }
            for (a, c, t, l) in edges {
                let a = a % n as u32;
                let c = c % n as u32;
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            b.build().expect("valid random graph")
        })
}

/// A random connected simple query: a tree plus up to one closing edge,
/// with a random strict partial order (pairs oriented low ≺ high so the
/// relation is trivially acyclic before closure).
#[allow(dead_code)]
pub fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (
        2usize..5,
        prop::collection::vec(0u32..2, 5),
        prop::collection::vec((0usize..8, 0usize..8), 0..4),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(n, labels, order_pairs, extra_seed, add_extra)| {
            let mut qb = QueryGraphBuilder::new();
            for &l in labels.iter().take(n) {
                qb.vertex(l);
            }
            // Random tree: vertex i links to some j < i.
            let mut num_edges = 0usize;
            for i in 1..n {
                let j = (extra_seed as usize >> i) % i;
                qb.edge(j, i);
                num_edges += 1;
            }
            // Optional closing edge between two non-adjacent vertices.
            if add_extra && n >= 3 {
                let a = extra_seed as usize % n;
                let b = (extra_seed as usize / 7) % n;
                let (a, b) = (a.min(b), a.max(b));
                // Tree edges are (parent, i); (a, b) duplicates only if b
                // links to a. Rebuild check via the builder's validation:
                // try it, drop on failure.
                if a != b {
                    let mut qb2 = qb.clone();
                    qb2.edge(a, b);
                    if qb2.clone().build().is_ok() {
                        qb = qb2;
                        num_edges += 1;
                    }
                }
            }
            for &(x, y) in &order_pairs {
                if num_edges >= 2 {
                    let x = x % num_edges;
                    let y = y % num_edges;
                    if x != y {
                        qb.precede(x.min(y), x.max(y));
                    }
                }
            }
            qb.build().expect("valid random query")
        })
}

/// Like [`arb_graph`], but with timestamps drawn from a tiny range so most
/// instants carry several arrivals *and* several expirations — the
/// worst-case regime for batched delta application.
#[allow(dead_code)]
pub fn arb_bursty_graph() -> impl Strategy<Value = TemporalGraph> {
    (
        3usize..7,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..6, 0u32..2), 6..22),
        prop::collection::vec(0u32..2, 7),
    )
        .prop_map(|(n, edges, labels)| {
            let mut b = TemporalGraphBuilder::new();
            for &l in labels.iter().take(n) {
                b.vertex(l);
            }
            for (a, c, t, l) in edges {
                let a = a % n as u32;
                let c = c % n as u32;
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            b.build().expect("valid random graph")
        })
}

/// Normalizes match events for set comparison.
#[allow(dead_code)]
pub fn normalize(mut evs: Vec<MatchEvent>) -> Vec<(MatchKind, Ts, Embedding)> {
    let mut v: Vec<(MatchKind, Ts, Embedding)> =
        evs.drain(..).map(|m| (m.kind, m.at, m.embedding)).collect();
    v.sort();
    v
}
