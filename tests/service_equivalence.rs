//! Differential suite for the sharded multi-query service: every resident
//! query's match stream out of `MatchService` must be **byte-identical**
//! to a standalone `TcmEngine` run of that query — across shard counts
//! ({1, 2, one-per-query}), shard-pool widths ({0, 2}), both stream
//! regimes (per-event and delta-batched), every Table III profile, and
//! the checked-in mini-SNAP fixture.
//!
//! Also pinned here, per the PR-5 acceptance criteria:
//!
//! * the service allocates exactly **one `WindowGraph` per shard** (via
//!   `ServiceStats::windows_allocated`) while 8 queries are resident;
//! * live admission mid-stream reports exactly the standalone *suffix*
//!   from the admission point, and live removal leaves every other
//!   query's stream untouched.
//!
//! CI runs this suite in release at `TCSM_THREADS={0,2}` (the
//! service-smoke job).

use tcsm::datasets::ingest::DatasetSource;
use tcsm::datasets::{FileSource, QueryGen, ALL_PROFILES};
use tcsm::graph::io::{parse_snap_with_stats, SnapOptions};
use tcsm::prelude::*;

fn fixture_graph() -> TemporalGraph {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    ))
    .expect("fixture is checked in");
    parse_snap_with_stats(&text, &SnapOptions::default())
        .expect("fixture parses")
        .0
}

fn engine_cfg(directed: bool, batching: bool) -> EngineConfig {
    EngineConfig {
        directed,
        batching,
        ..Default::default()
    }
}

/// Standalone engine run (threads from `TCSM_THREADS`, so the CI matrix
/// also gates the engine's own pool paths — streams are width-invariant).
fn standalone(
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
    batching: bool,
) -> (Vec<MatchEvent>, EngineStats) {
    let mut e = TcmEngine::new(q, g, delta, engine_cfg(directed, batching)).expect("engine");
    let out = e.run();
    (out, *e.stats())
}

/// Full-stream service run: all queries resident from the first event.
fn service_streams(
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    shards: usize,
    threads: usize,
    directed: bool,
    batching: bool,
) -> (
    Vec<(Vec<MatchEvent>, EngineStats)>,
    tcsm::service::ServiceStats,
) {
    let cfg = ServiceConfig {
        shards,
        threads,
        batching,
        directed,
        policy: ShardPolicy::LabelLocality,
    };
    let mut svc = MatchService::new(g, delta, cfg).expect("service");
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            let (sink, got) = CollectingSink::new();
            (
                svc.add_query(q, engine_cfg(directed, batching), Box::new(sink)),
                got,
            )
        })
        .collect();
    svc.run();
    let stats = svc.stats();
    let out = handles
        .into_iter()
        .map(|(id, got)| (got.take(), *svc.query_stats(id).expect("resident")))
        .collect();
    (out, stats)
}

fn assert_service_matches_standalone(
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
    label: &str,
) {
    for batching in [false, true] {
        let expect: Vec<_> = queries
            .iter()
            .map(|q| standalone(q, g, delta, directed, batching))
            .collect();
        for shards in [1usize, 2, queries.len().max(1)] {
            for threads in [0usize, 2] {
                let (got, svc_stats) =
                    service_streams(queries, g, delta, shards, threads, directed, batching);
                assert_eq!(
                    svc_stats.windows_allocated, shards as u64,
                    "{label}: exactly one window per shard"
                );
                for (i, ((gs, gstats), (es, estats))) in got.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        gs, es,
                        "{label}: query {i} stream diverged \
                         (shards {shards}, threads {threads}, batching {batching})"
                    );
                    assert_eq!(
                        gstats.semantic(),
                        estats.semantic(),
                        "{label}: query {i} stats diverged \
                         (shards {shards}, threads {threads}, batching {batching})"
                    );
                }
            }
        }
    }
}

/// Every Table III profile: service streams are byte-identical to
/// standalone engines at every shard count / pool width / regime.
#[test]
fn profile_streams_byte_identical_to_standalone_engines() {
    for (pi, p) in ALL_PROFILES.iter().enumerate() {
        let scale = 0.02;
        let g = p.generate_bursty(0x5eed ^ pi as u64, scale, 4);
        let delta = p.window_sizes(scale)[2].max(4);
        let mut qg = QueryGen::new(&g);
        qg.directed = p.directed;
        let queries: Vec<QueryGraph> = [(3usize, 0.0), (4, 0.5), (5, 1.0)]
            .iter()
            .enumerate()
            .filter_map(|(i, &(size, density))| {
                qg.generate(size, density, (delta * 3 / 4).max(4), 31 + i as u64)
            })
            .collect();
        if queries.is_empty() {
            continue;
        }
        assert_service_matches_standalone(&queries, &g, delta, p.directed, p.name);
    }
}

/// The mini-SNAP fixture with 8 resident queries — the PR-5 acceptance
/// configuration: ≥ 2 shards, one window per shard, byte-identical
/// per-query streams against 8 standalone engines.
#[test]
fn mini_snap_eight_queries_acceptance() {
    let g = fixture_graph();
    let source = FileSource::snap("crates/datasets/fixtures/mini-snap.txt");
    let delta = source.window_sizes(&g, 1.0)[0];
    let mut qg = QueryGen::new(&g);
    qg.directed = true;
    let queries: Vec<QueryGraph> = (0..16u64)
        .filter_map(|seed| {
            let size = 3 + (seed % 3) as usize;
            let density = [0.0, 0.5, 1.0][(seed % 3) as usize];
            qg.generate(size, density, (delta * 3 / 4).max(4), 101 + seed)
        })
        .take(8)
        .collect();
    assert_eq!(queries.len(), 8, "fixture must host 8 generated queries");
    for batching in [false, true] {
        let expect: Vec<_> = queries
            .iter()
            .map(|q| standalone(q, &g, delta, true, batching))
            .collect();
        assert!(
            expect.iter().any(|(s, _)| !s.is_empty()),
            "acceptance workload must produce matches"
        );
        for shards in [2usize, 4, 8] {
            for threads in [0usize, 2] {
                let (got, svc_stats) =
                    service_streams(&queries, &g, delta, shards, threads, true, batching);
                assert_eq!(svc_stats.shards, shards);
                assert_eq!(
                    svc_stats.windows_allocated, shards as u64,
                    "exactly one WindowGraph per shard with 8 resident queries"
                );
                assert_eq!(svc_stats.admitted, 8);
                for (i, ((gs, gstats), (es, estats))) in got.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        gs, es,
                        "query {i} diverged (shards {shards}, threads {threads}, \
                         batching {batching})"
                    );
                    assert_eq!(gstats.semantic(), estats.semantic());
                }
            }
        }
    }
}

/// Live admission and retirement mid-stream: an admitted query reports
/// exactly the standalone suffix from its admission point; a removed
/// query's retirement leaves every survivor's stream byte-identical.
#[test]
fn live_add_remove_mid_stream_on_the_fixture() {
    let g = fixture_graph();
    let source = FileSource::snap("crates/datasets/fixtures/mini-snap.txt");
    let delta = source.window_sizes(&g, 1.0)[0];
    let mut qg = QueryGen::new(&g);
    qg.directed = true;
    let qa = qg
        .generate(3, 0.0, (delta * 3 / 4).max(4), 7)
        .expect("query A");
    let qb = qg
        .generate(4, 0.5, (delta * 3 / 4).max(4), 8)
        .expect("query B");
    let qc = qg
        .generate(3, 1.0, (delta * 3 / 4).max(4), 9)
        .expect("query C");
    for batching in [false, true] {
        // Record each standalone stream *per service step* so admission /
        // removal points align exactly with service deltas.
        let per_step = |q: &QueryGraph| -> Vec<Vec<MatchEvent>> {
            let mut e = TcmEngine::new(q, &g, delta, engine_cfg(true, batching)).expect("engine");
            let mut steps = Vec::new();
            let mut buf = Vec::new();
            loop {
                let more = if batching {
                    e.step_batch(&mut buf)
                } else {
                    e.step(&mut buf)
                };
                if !more {
                    break;
                }
                steps.push(std::mem::take(&mut buf));
            }
            steps
        };
        let sa = per_step(&qa);
        let sb = per_step(&qb);
        let sc = per_step(&qc);
        let total = sa.len();
        assert_eq!(total, sb.len());
        let (admit_b, remove_a, admit_c) = (total / 3, total / 2, 2 * total / 3);

        let mut svc = MatchService::new(
            &g,
            delta,
            ServiceConfig {
                shards: 2,
                threads: 0,
                batching,
                directed: true,
                policy: ShardPolicy::LabelLocality,
            },
        )
        .expect("service");
        let (sink_a, got_a) = CollectingSink::new();
        let ida = svc.add_query(&qa, engine_cfg(true, batching), Box::new(sink_a));
        let mut handles = Vec::new();
        for step in 0..total {
            if step == admit_b {
                let (sink, got) = CollectingSink::new();
                handles.push((
                    svc.add_query(&qb, engine_cfg(true, batching), Box::new(sink)),
                    got,
                    &sb,
                    admit_b,
                ));
            }
            if step == remove_a {
                let stats = svc.remove_query(ida).expect("A resident");
                let expect_a: Vec<MatchEvent> = sa[..remove_a].iter().flatten().cloned().collect();
                assert_eq!(
                    got_a.take(),
                    expect_a,
                    "removed query's delivered prefix (batching {batching})"
                );
                assert!(stats.events > 0);
            }
            if step == admit_c {
                let (sink, got) = CollectingSink::new();
                handles.push((
                    svc.add_query(&qc, engine_cfg(true, batching), Box::new(sink)),
                    got,
                    &sc,
                    admit_c,
                ));
            }
            assert!(svc.step(), "stream ends exactly at the recorded length");
        }
        assert!(!svc.step(), "stream exhausted");
        for (id, got, steps, admitted_at) in handles {
            let expect: Vec<MatchEvent> = steps[admitted_at..].iter().flatten().cloned().collect();
            assert_eq!(
                got.take(),
                expect,
                "admitted query must report the standalone suffix \
                 (batching {batching}, admitted at {admitted_at})"
            );
            assert!(svc.query_stats(id).is_some());
        }
        // A late audit: every surviving runtime still passes its
        // from-scratch consistency check against the shared windows.
        svc.check_consistency();
    }
}
