//! The paper's running example (Figures 2–3) end-to-end through the facade:
//! every worked example of §II and §IV must hold.

use tcsm::dag::{build_best_dag, build_dag, Polarity};
use tcsm::filter::{CandPair, FilterBank, FilterMode};
use tcsm::graph::query::paper_running_example;
use tcsm::prelude::*;

/// Figure 2a: σ1..σ14 arriving at t = 1..14, with the figure's colours.
fn figure_2a() -> TemporalGraph {
    let mut b = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 5, 2, 3, 5, 4];
    let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
    for (a, bb, t) in [
        (0, 1, 1),
        (3, 4, 2),
        (3, 4, 3),
        (0, 3, 4),
        (3, 6, 5),
        (0, 1, 6),
        (3, 6, 7),
        (0, 3, 8),
        (4, 6, 9),
        (4, 6, 10),
        (1, 4, 11),
        (0, 3, 12),
        (3, 4, 13),
        (3, 6, 14),
    ] {
        b.edge(v[a], v[bb], t);
    }
    b.build().unwrap()
}

#[test]
fn example_iv_2_dag_scores() {
    // BuildDAG rooted at u1 recovers Figure 3a with score 5, and the best
    // root is at least as good.
    let q = paper_running_example();
    let dag = build_dag(&q, 0);
    assert_eq!(dag.score(), 5);
    assert!(build_best_dag(&q).score() >= 5);
}

#[test]
fn example_iv_1_and_iv_4_filtering() {
    // (ε2, σ8) is TC-matchable, (ε2, σ12) is not; both enter/stay out of
    // the DCS pair set accordingly once σ14 has arrived.
    let q = paper_running_example();
    let dag = build_dag(&q, 0);
    let g = figure_2a();
    let mut w = WindowGraph::new(g.labels().to_vec(), false);
    let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
    let mut deltas = Vec::new();
    for e in g.edges() {
        w.insert(e);
        deltas.clear();
        bank.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
    }
    let key_of = |t: i64| g.edges().iter().find(|e| e.time == Ts::new(t)).unwrap().key;
    let pair8 = CandPair {
        qedge: 1,
        key: key_of(8),
        a_to_src: true,
    };
    let pair12 = CandPair {
        qedge: 1,
        key: key_of(12),
        a_to_src: true,
    };
    assert!(bank.contains(pair8));
    assert!(!bank.contains(pair12));
}

#[test]
fn example_ii_2_stream_semantics() {
    // δ = 10: the σ6-variant embedding occurs at t = 14 and expires at
    // t = 16 (when σ6 leaves the window).
    let q = paper_running_example();
    let g = figure_2a();
    let mut engine = TcmEngine::new(&q, &g, 10, EngineConfig::default()).unwrap();
    let events = engine.run();
    let times_of = |m: &MatchEvent| -> Vec<i64> {
        m.embedding.edge_times(&g).iter().map(|t| t.raw()).collect()
    };
    let paper_variant = vec![6, 8, 11, 13, 10, 14];
    let occurred_at: Vec<i64> = events
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred && times_of(m) == paper_variant)
        .map(|m| m.at.raw())
        .collect();
    assert_eq!(occurred_at, vec![14]);
    let expired_at: Vec<i64> = events
        .iter()
        .filter(|m| m.kind == MatchKind::Expired && times_of(m) == paper_variant)
        .map(|m| m.at.raw())
        .collect();
    assert_eq!(expired_at, vec![16]);
    // The σ1 variant never occurs with δ = 10 (σ1 expires at t = 11).
    let sigma1_variant = vec![1, 8, 11, 13, 10, 14];
    assert!(!events.iter().any(|m| times_of(m) == sigma1_variant));
}

#[test]
fn example_ii_1_with_unbounded_window() {
    // With a window longer than the whole stream, both Example II.1
    // embeddings (σ1 and σ6 variants) occur.
    let q = paper_running_example();
    let g = figure_2a();
    let mut engine = TcmEngine::new(&q, &g, 1000, EngineConfig::default()).unwrap();
    let events = engine.run();
    let occurred: Vec<Vec<i64>> = events
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .map(|m| m.embedding.edge_times(&g).iter().map(|t| t.raw()).collect())
        .collect();
    assert!(occurred.contains(&vec![1, 8, 11, 13, 10, 14]));
    assert!(occurred.contains(&vec![6, 8, 11, 13, 10, 14]));
    // The non-time-constrained mapping of Example II.1 must not occur:
    // ε2 ↦ σ4 with ε4 ↦ σ2 violates ε2 ≺ ε4.
    assert!(!occurred.contains(&vec![1, 4, 11, 2, 9, 5]));
}

#[test]
fn temporal_relation_definition_ii_4() {
    // ε2 ⇝ ε4, ε5, ε6 in Figure 3a (it is their ancestor and temporally
    // related); ε2 is an ancestor of ε3's head but unrelated to ε3.
    let q = paper_running_example();
    let dag = build_dag(&q, 0);
    assert!(dag.temporal_ancestor(&q, Polarity::Later, 1, 3));
    assert!(dag.temporal_ancestor(&q, Polarity::Later, 1, 4));
    assert!(dag.temporal_ancestor(&q, Polarity::Later, 1, 5));
    assert!(!dag.temporal_ancestor(&q, Polarity::Later, 1, 2));
    // ε4 ≺ ε6 holds but ε4 is not a DAG-ancestor of ε6.
    assert!(q.order().precedes(3, 5));
    assert!(!dag.temporal_ancestor(&q, Polarity::Later, 3, 5));
}
