//! Incremental-structure invariants on random streams: after every event,
//! the max-min timestamp tables, the filter-bank membership and the DCS
//! candidacies must equal their from-scratch recomputations.

mod common;

use common::{arb_graph, arb_query};
use proptest::prelude::*;
use tcsm::dag::build_best_dag;
use tcsm::dcs::Dcs;
use tcsm::filter::{FilterBank, FilterMode};
use tcsm::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn filter_and_dcs_stay_consistent(
        g in arb_graph(),
        q in arb_query(),
        delta in 3i64..15,
        directed in any::<bool>(),
    ) {
        let dag = build_best_dag(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), directed);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut dcs = Dcs::new(dag.clone(), &q, &w);
        let mut alive: Vec<tcsm::graph::TemporalEdge> = Vec::new();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    alive.push(edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    alive.retain(|e| e.key != edge.key);
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            dcs.apply(&q, &w, |k| g.edge(k), &deltas);
            bank.check_consistency(&q, &w, alive.iter());
            dcs.check_consistency(&q, &w);
        }
        // Stream drained: everything must be back to empty.
        prop_assert_eq!(bank.num_pairs(), 0);
        prop_assert_eq!(dcs.num_edges(), 0);
        prop_assert_eq!(dcs.num_nodes(), 0);
    }

    #[test]
    fn maxmin_values_match_definitional_oracle(
        g in arb_graph(),
        q in arb_query(),
        delta in 4i64..12,
    ) {
        use tcsm::filter::instance::FilterInstance;
        use tcsm::filter::oracle::maxmin_by_definition;
        let dag = build_best_dag(&q);
        for pol in Polarity::BOTH {
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inst = FilterInstance::new(dag.clone(), pol, &q, &w);
            let mut flips = Vec::new();
            let queue = EventQueue::new(&g, delta).unwrap();
            // Check a prefix of the stream (the oracle is exponential).
            for ev in queue.iter().take(14) {
                let edge = *g.edge(ev.edge);
                match ev.kind {
                    EventKind::Insert => w.insert(&edge),
                    EventKind::Delete => w.remove(&edge),
                }
                inst.apply(&q, &w, &edge, &mut flips);
            }
            for u in 0..q.num_vertices() {
                for v in 0..g.num_vertices() as u32 {
                    for e in dag.ancestor_edges(u).iter() {
                        let oracle = maxmin_by_definition(&q, &w, &dag, pol, u, v, e, 200_000);
                        let inc = match pol {
                            Polarity::Later => inst.natural_value(u, v, e),
                            Polarity::Earlier => inst.natural_value(u, v, e).neg(),
                        };
                        prop_assert_eq!(inc, oracle, "u{} v{} e{} {:?}", u, v, e, pol);
                    }
                }
            }
        }
    }
}
