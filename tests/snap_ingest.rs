//! End-to-end ingest differential suite over the checked-in miniature SNAP
//! fixture: the *real-stream* shape (sparse ids, epoch timestamps, bursts,
//! duplicate `(src,dst,t)` triples, self-loops, slightly unsorted records)
//! must flow through ingest → query generation → `TcmEngine` with the
//! serial, batched and threaded paths in agreement.
//!
//! Agreement is pinned at the strength each regime pair guarantees:
//!
//! * same regime, different pool widths → **byte-identical** streams
//!   (the worker pool merges shards/seeds in deterministic order);
//! * per-event vs per-batch regime → identical **ordered
//!   (kind, instant, embedding) sets** (a combined batch sweep may
//!   interleave same-instant emissions differently than per-event sweeps).
//!
//! CI replays this suite at `TCSM_THREADS=2` (the ingest smoke job), so a
//! divergence on the real-stream shape fails the build.

mod common;

use common::normalize;
use tcsm::datasets::ingest::{DatasetSource, FileSource};
use tcsm::datasets::QueryGen;
use tcsm::graph::io::{parse_snap_with_stats, SnapOptions};
use tcsm::prelude::*;

fn fixture_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    ))
    .expect("fixture is checked in")
}

fn fixture_graph() -> TemporalGraph {
    parse_snap_with_stats(&fixture_text(), &SnapOptions::default())
        .expect("fixture parses")
        .0
}

fn run_stream(
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    batching: bool,
    threads: usize,
) -> (Vec<MatchEvent>, EngineStats) {
    let cfg = EngineConfig {
        directed: true,
        batching,
        threads,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    let mut out = Vec::new();
    if batching {
        while e.step_batch(&mut out) {}
    } else {
        while e.step(&mut out) {}
    }
    (out, *e.stats())
}

#[test]
fn fixture_ingest_normalizes_the_real_stream_shape() {
    let (g, stats) = parse_snap_with_stats(&fixture_text(), &SnapOptions::default()).unwrap();
    // Sparse ids densified to 0..n.
    assert!(stats.raw_id_max > g.num_vertices() as u64 * 1000);
    assert_eq!(stats.vertices, g.num_vertices());
    // Epochs rescaled: replay starts at instant 0.
    assert_eq!(g.edges()[0].time.raw(), 0);
    assert!(
        stats.epoch_min > 1_000_000_000,
        "fixture uses epoch seconds"
    );
    // The nasty parts are actually present in the fixture.
    assert!(stats.self_loops_skipped > 0, "fixture carries self-loops");
    assert!(stats.duplicate_triples > 0, "fixture carries dup triples");
    assert!(g.avg_parallel_edges() > 1.0, "fixture is a multigraph");
    // Bursts: strictly fewer distinct instants than edges.
    let mut times: Vec<i64> = g.edges().iter().map(|e| e.time.raw()).collect();
    times.sort_unstable();
    times.dedup();
    assert!(times.len() < g.num_edges(), "fixture is bursty");
}

#[test]
fn fixture_querygen_walks_succeed_on_the_file_backed_source() {
    let g = fixture_graph();
    let qg = QueryGen::new(&g);
    let source = FileSource::snap("crates/datasets/fixtures/mini-snap.txt");
    let delta = source.window_sizes(&g, 1.0)[2];
    for (i, &size) in [3usize, 4, 5].iter().enumerate() {
        let q = qg
            .generate(size, 0.5, (delta * 3 / 4).max(4), 7 + i as u64)
            .expect("fixture supports random-walk queries");
        assert_eq!(q.num_edges(), size);
    }
}

/// The acceptance differential: identical (per the regime contracts above)
/// match streams on serial, batched, and threads=2 paths.
#[test]
fn fixture_streams_agree_on_serial_batched_and_threaded_paths() {
    let g = fixture_graph();
    let qg = QueryGen::new(&g);
    // Small window keeps the full cross-product affordable in debug CI.
    let source = FileSource::snap("crates/datasets/fixtures/mini-snap.txt");
    let delta = source.window_sizes(&g, 1.0)[0];
    for (seed, size, density) in [(1u64, 3usize, 0.0), (2, 4, 0.5), (3, 5, 1.0)] {
        let Some(q) = qg.generate(size, density, (delta * 3 / 4).max(4), seed) else {
            continue;
        };
        let (serial0, stats_s0) = run_stream(&q, &g, delta, false, 0);
        let (serial2, stats_s2) = run_stream(&q, &g, delta, false, 2);
        let (batched0, stats_b0) = run_stream(&q, &g, delta, true, 0);
        let (batched2, stats_b2) = run_stream(&q, &g, delta, true, 2);

        // Same regime, different widths: byte-identical.
        assert_eq!(serial0, serial2, "serial stream diverged at threads=2");
        assert_eq!(batched0, batched2, "batched stream diverged at threads=2");
        assert_eq!(stats_s0.semantic(), stats_s2.semantic());
        assert_eq!(stats_b0.semantic(), stats_b2.semantic());

        assert!(
            !serial0.is_empty(),
            "walked queries must match their own witness"
        );
        // Across regimes: identical ordered (kind, instant, embedding) sets.
        assert_eq!(
            normalize(serial0),
            normalize(batched0),
            "batched regime diverged from serial (size {size}, density {density})"
        );
    }
}
