//! Differential suite for the intra-query parallel runtime: at every worker
//! pool width the engine must report a match stream **byte-identical** to
//! the serial engine's — same events, same order, same embeddings — because
//! the runtime merges per-instance filter shards in instance order and
//! per-seed sweep results in seed order. Algorithmic counters
//! (`EngineStats::semantic`) must agree too, and every incremental
//! structure must pass its from-scratch audit after every batch while the
//! pool is running.
//!
//! Widths: 0 (no pool — the historical serial path), 1 (pool machinery,
//! caller lane only), 2 and 8 (real parked workers). CI additionally runs
//! the *whole* workspace suite under `TCSM_THREADS=8` and this suite in
//! release at `TCSM_THREADS=2`; explicit `threads` fields below make the
//! comparisons self-contained either way.

mod common;

use common::{arb_bursty_graph, arb_query};
use proptest::prelude::*;
use tcsm::datasets::{QueryGen, ALL_PROFILES};
use tcsm::prelude::*;

const PRESETS: [AlgorithmPreset; 4] = [
    AlgorithmPreset::Tcm,
    AlgorithmPreset::TcmNoPruning,
    AlgorithmPreset::TcmNoFilter,
    AlgorithmPreset::SymBiPostCheck,
];

/// Pool widths the differential comparisons sweep.
const WIDTHS: [usize; 3] = [1, 2, 8];

#[allow(clippy::too_many_arguments)]
fn run_stream(
    preset: AlgorithmPreset,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
    batching: bool,
    threads: usize,
    audit: bool,
) -> (Vec<MatchEvent>, EngineStats) {
    let cfg = EngineConfig {
        preset,
        directed,
        batching,
        threads,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    let mut out = Vec::new();
    if batching {
        while e.step_batch(&mut out) {
            if audit {
                e.check_consistency();
            }
        }
    } else {
        while e.step(&mut out) {
            if audit {
                e.check_consistency();
            }
        }
    }
    (out, *e.stats())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Adversarial bursty multigraphs, all presets: the batched stream at
    /// every pool width is byte-identical to width 0, with the full
    /// per-batch consistency audit running under the widest pool.
    #[test]
    fn parallel_batched_equals_serial_on_bursty_multigraphs(
        g in arb_bursty_graph(),
        q in arb_query(),
        delta in 1i64..8,
        directed in any::<bool>(),
    ) {
        for preset in PRESETS {
            let (expect, base) =
                run_stream(preset, &q, &g, delta, directed, true, 0, false);
            for threads in WIDTHS {
                let audit = threads == 8;
                let (got, stats) =
                    run_stream(preset, &q, &g, delta, directed, true, threads, audit);
                prop_assert_eq!(
                    &expect, &got,
                    "stream diverged (preset {:?}, threads {})", preset, threads
                );
                prop_assert_eq!(
                    base.semantic(), stats.semantic(),
                    "semantic stats diverged (preset {:?}, threads {})", preset, threads
                );
                // Label-only presets have no filter instances to fan out.
                let has_filter = matches!(
                    preset,
                    AlgorithmPreset::Tcm | AlgorithmPreset::TcmNoPruning
                );
                if has_filter {
                    prop_assert!(
                        stats.parallel_filter_rounds > 0 || g.num_edges() == 0,
                        "pool engines must route filter updates through the executor"
                    );
                }
            }
        }
    }

    /// The *serial-event* regime under a pool: only the four filter-instance
    /// updates fan out (sweeps are single-edge), and the stream must still
    /// be byte-identical to the no-pool engine.
    #[test]
    fn parallel_filter_preserves_serial_event_stream(
        g in arb_bursty_graph(),
        q in arb_query(),
        delta in 1i64..8,
    ) {
        let (expect, base) =
            run_stream(AlgorithmPreset::Tcm, &q, &g, delta, false, false, 0, false);
        for threads in WIDTHS {
            let (got, stats) =
                run_stream(AlgorithmPreset::Tcm, &q, &g, delta, false, false, threads, false);
            prop_assert_eq!(&expect, &got, "stream diverged (threads {})", threads);
            prop_assert_eq!(base.semantic(), stats.semantic());
            prop_assert_eq!(stats.parallel_sweeps, 0, "serial events must not fan out");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    /// Table-III-profile streams, re-timed bursty so batches are wide
    /// enough to fan out: byte-identical streams and semantic stats across
    /// pool widths, with the per-batch audit at width 8 on the Tcm preset.
    #[test]
    fn parallel_equals_serial_on_profile_streams(
        profile_idx in 0usize..ALL_PROFILES.len(),
        burst in 2usize..6,
        qseed in any::<u64>(),
        size in 4usize..7,
    ) {
        let p = ALL_PROFILES[profile_idx];
        let scale = 0.02;
        let g = p.generate_bursty(qseed ^ 0x9a11e1, scale, burst);
        let delta = (g.num_edges() as i64 / (4 * burst as i64)).max(2);
        let qg = QueryGen::new(&g);
        let Some(q) = qg.generate(size, 0.5, delta.max(4), qseed) else {
            // Sparse scaled profiles sometimes can't host a query this big.
            return Ok(());
        };
        for preset in PRESETS {
            let (expect, base) = run_stream(preset, &q, &g, delta, false, true, 0, false);
            for threads in WIDTHS {
                let audit = threads == 8 && preset == AlgorithmPreset::Tcm;
                let (got, stats) =
                    run_stream(preset, &q, &g, delta, false, true, threads, audit);
                prop_assert_eq!(
                    &expect, &got,
                    "{}: stream diverged (preset {:?}, threads {})", p.name, preset, threads
                );
                prop_assert_eq!(base.semantic(), stats.semantic());
            }
        }
    }
}

#[test]
fn parallel_sweeps_actually_fan_out() {
    // A bursty profile stream wide enough that multi-seed arrival batches
    // exist: the pool engine must report fanned-out sweeps (the serial
    // engine must not), while the streams stay equal.
    let p = ALL_PROFILES[0];
    let g = p.generate_bursty(7, 0.03, 5);
    let delta = (g.num_edges() as i64 / 20).max(2);
    let qg = QueryGen::new(&g);
    let q = qg.generate(5, 0.5, delta.max(4), 13).expect("query");
    let (expect, base) = run_stream(AlgorithmPreset::Tcm, &q, &g, delta, false, true, 0, false);
    let (got, stats) = run_stream(AlgorithmPreset::Tcm, &q, &g, delta, false, true, 8, false);
    assert_eq!(expect, got);
    assert_eq!(base.parallel_sweeps, 0);
    assert!(
        stats.parallel_sweeps > 0,
        "bursty stream must produce multi-seed fanned-out sweeps \
         (batches {}, events {})",
        stats.batches,
        stats.events
    );
    assert!(stats.parallel_sweep_seeds >= 2 * stats.parallel_sweeps);
    assert!(stats.parallel_filter_rounds > 0);
}

#[test]
fn budgeted_runs_stay_serial_in_the_sweep_phase() {
    // Budget semantics depend on one serial cursor over the batch; the
    // engine must refuse to fan out when any budget limit is set.
    let p = ALL_PROFILES[0];
    let g = p.generate_bursty(7, 0.03, 5);
    let delta = (g.num_edges() as i64 / 20).max(2);
    let qg = QueryGen::new(&g);
    let q = qg.generate(5, 0.5, delta.max(4), 13).expect("query");
    let cfg = EngineConfig {
        batching: true,
        threads: 8,
        budget: SearchBudget {
            max_total_nodes: u64::MAX / 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let _ = e.run();
    assert_eq!(e.stats().parallel_sweeps, 0);
    // The filter phase has no budget interaction and still fans out.
    assert!(e.stats().parallel_filter_rounds > 0);
}
