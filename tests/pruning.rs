//! Behavioural tests of the three §V pruning techniques: every flag
//! combination reports the same matches, and each technique actually fires
//! (its counter is non-zero) on workloads shaped to need it.

mod common;

use common::{arb_graph, arb_query, normalize};
use proptest::prelude::*;
use tcsm::core::PruningFlags;
use tcsm::datasets::{profiles::YAHOO, QueryGen};
use tcsm::prelude::*;

fn run_with_flags(
    flags: PruningFlags,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
) -> (Vec<MatchEvent>, EngineStats) {
    let cfg = EngineConfig {
        pruning_override: Some(flags),
        directed: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    let evs = e.run();
    (evs, *e.stats())
}

#[test]
fn each_technique_fires_on_parallel_heavy_workloads() {
    // Yahoo-profile traffic is parallel-edge heavy; across a few generated
    // queries all three techniques must activate somewhere.
    let g = YAHOO.generate(3, 0.4);
    let delta = YAHOO.window_sizes(0.4)[2];
    let qg = QueryGen::new(&g);
    let mut total = EngineStats::default();
    for seed in 0..8u64 {
        let Some(q) = qg.generate(7, 0.5, delta * 3 / 4, seed) else {
            continue;
        };
        let (_, s) = run_with_flags(PruningFlags::ALL, &q, &g, delta);
        total.pruned_case1 += s.pruned_case1;
        total.pruned_case2 += s.pruned_case2;
        total.pruned_case3 += s.pruned_case3;
        total.cloned_case1 += s.cloned_case1;
    }
    assert!(total.pruned_case1 > 0, "case 1 never pruned: {total:?}");
    assert!(total.pruned_case2 > 0, "case 2 never pruned: {total:?}");
    assert!(total.pruned_case3 > 0, "case 3 never pruned: {total:?}");
    assert!(total.cloned_case1 > 0, "case 1 never cloned: {total:?}");
}

#[test]
fn pruning_reduces_search_nodes() {
    let g = YAHOO.generate(3, 0.4);
    let delta = YAHOO.window_sizes(0.4)[2];
    let qg = QueryGen::new(&g);
    let (mut with, mut without) = (0u64, 0u64);
    for seed in 0..6u64 {
        let Some(q) = qg.generate(7, 0.75, delta * 3 / 4, seed) else {
            continue;
        };
        with += run_with_flags(PruningFlags::ALL, &q, &g, delta)
            .1
            .search_nodes;
        without += run_with_flags(PruningFlags::NONE, &q, &g, delta)
            .1
            .search_nodes;
    }
    assert!(
        with < without,
        "pruning should shrink the search: {with} !< {without}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn flag_combinations_agree(
        g in arb_graph(),
        q in arb_query(),
        delta in 3i64..15,
    ) {
        let reference = normalize(run_with_flags(PruningFlags::NONE, &q, &g, delta).0);
        for flags in [
            PruningFlags::ALL,
            PruningFlags::only(1),
            PruningFlags::only(2),
            PruningFlags::only(3),
            PruningFlags { case1: true, case2: true, case3: false },
            PruningFlags { case1: false, case2: true, case3: true },
        ] {
            let got = normalize(run_with_flags(flags, &q, &g, delta).0);
            prop_assert_eq!(&reference, &got, "flags {:?} diverged", flags);
        }
    }
}
