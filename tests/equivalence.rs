//! The workspace's strongest correctness guarantee: on random streams and
//! random queries, every algorithm variant and every baseline reports
//! exactly the same occurrence/expiration events as the brute-force oracle.

mod common;

use common::{arb_graph, arb_query, normalize};
use proptest::prelude::*;
use tcsm::baselines::{OracleEngine, RapidFlowLite, TimingJoin};
use tcsm::prelude::*;

fn run_engine(
    preset: AlgorithmPreset,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
) -> Vec<MatchEvent> {
    let cfg = EngineConfig {
        preset,
        directed,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    e.run()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 400,
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_variants_match_the_oracle(
        g in arb_graph(),
        q in arb_query(),
        delta in 3i64..18,
        directed in any::<bool>(),
    ) {
        let mut oracle = OracleEngine::new(&q, &g, delta, directed).expect("oracle builds");
        let expected = normalize(oracle.run());

        for preset in [
            AlgorithmPreset::Tcm,
            AlgorithmPreset::TcmNoPruning,
            AlgorithmPreset::TcmNoFilter,
            AlgorithmPreset::SymBiPostCheck,
        ] {
            let got = normalize(run_engine(preset, &q, &g, delta, directed));
            prop_assert_eq!(&expected, &got, "preset {:?} diverged", preset);
        }

        let mut rf = RapidFlowLite::new(&q, &g, delta, directed, Default::default(), true)
            .expect("rapidflow builds");
        prop_assert_eq!(&expected, &normalize(rf.run()), "RapidFlow-lite diverged");

        let mut tj = TimingJoin::new(&q, &g, delta, directed, 0, true).expect("timing builds");
        prop_assert_eq!(&expected, &normalize(tj.run()), "Timing-join diverged");
    }

    #[test]
    fn every_reported_embedding_is_valid(
        g in arb_graph(),
        q in arb_query(),
        delta in 3i64..18,
    ) {
        let events = run_engine(AlgorithmPreset::Tcm, &q, &g, delta, false);
        for ev in &events {
            prop_assert!(ev.embedding.verify(&q, &g));
        }
        // Occurrences and expirations pair up exactly once the stream drains.
        let occ = events.iter().filter(|m| m.kind == MatchKind::Occurred).count();
        let exp = events.iter().filter(|m| m.kind == MatchKind::Expired).count();
        prop_assert_eq!(occ, exp);
    }
}
