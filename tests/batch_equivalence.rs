//! Differential suite for batched delta application: on random bursty
//! streams — adversarial small multigraphs and Table-III-profile synthetic
//! streams alike — the batched engine must report exactly the serial
//! engine's match multiset for every algorithm preset, and every
//! incremental structure must pass its from-scratch consistency audit after
//! every delta batch.
//!
//! CI runs this suite in `--release` with `PROPTEST_CASES` raised; the
//! defaults below keep plain `cargo test` debug runs quick.

mod common;

use common::{arb_bursty_graph, arb_query, normalize};
use proptest::prelude::*;
use tcsm::datasets::{QueryGen, ALL_PROFILES};
use tcsm::prelude::*;

const PRESETS: [AlgorithmPreset; 4] = [
    AlgorithmPreset::Tcm,
    AlgorithmPreset::TcmNoPruning,
    AlgorithmPreset::TcmNoFilter,
    AlgorithmPreset::SymBiPostCheck,
];

fn run_serial(
    preset: AlgorithmPreset,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
) -> Vec<MatchEvent> {
    let cfg = EngineConfig {
        preset,
        directed,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    e.run()
}

/// Runs the batched engine step by step, auditing every structure against
/// its from-scratch recomputation after each batch.
fn run_batched_audited(
    preset: AlgorithmPreset,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    directed: bool,
    audit: bool,
) -> (Vec<MatchEvent>, EngineStats) {
    let cfg = EngineConfig {
        preset,
        directed,
        batching: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(q, g, delta, cfg).expect("engine builds");
    let mut out = Vec::new();
    while e.step_batch(&mut out) {
        if audit {
            e.check_consistency();
        }
    }
    let stats = *e.stats();
    (out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 400,
        ..ProptestConfig::default()
    })]

    /// Adversarial tiny multigraphs: duplicate timestamps, parallel edges,
    /// same-pair expiry+arrival collisions. Full per-batch audit.
    #[test]
    fn batched_equals_serial_on_bursty_multigraphs(
        g in arb_bursty_graph(),
        q in arb_query(),
        delta in 1i64..8,
        directed in any::<bool>(),
    ) {
        for preset in PRESETS {
            let expected = normalize(run_serial(preset, &q, &g, delta, directed));
            let (got, stats) = run_batched_audited(preset, &q, &g, delta, directed, true);
            prop_assert_eq!(&expected, &normalize(got), "preset {:?} diverged", preset);
            prop_assert_eq!(stats.events, 2 * g.num_edges() as u64);
            prop_assert!(stats.batches <= stats.events);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    /// Table-III-profile streams, re-timed bursty, with generated queries.
    /// The audit runs on the Tcm preset (the others share the structures).
    #[test]
    fn batched_equals_serial_on_profile_streams(
        profile_idx in 0usize..ALL_PROFILES.len(),
        burst in 2usize..6,
        qseed in any::<u64>(),
        size in 4usize..7,
    ) {
        let p = ALL_PROFILES[profile_idx];
        let scale = 0.02;
        let g = p.generate_bursty(qseed ^ 0x5eed, scale, burst);
        let delta = (g.num_edges() as i64 / (4 * burst as i64)).max(2);
        let qg = QueryGen::new(&g);
        let Some(q) = qg.generate(size, 0.5, delta.max(4), qseed) else {
            // Sparse scaled profiles sometimes can't host a query this big.
            return Ok(());
        };
        for preset in PRESETS {
            let expected = normalize(run_serial(preset, &q, &g, delta, false));
            let (got, _) = run_batched_audited(
                preset, &q, &g, delta, false,
                preset == AlgorithmPreset::Tcm,
            );
            prop_assert_eq!(&expected, &normalize(got), "{}: preset {:?} diverged", p.name, preset);
        }
    }
}

#[test]
fn serial_step_path_is_unchanged_by_batching_support() {
    // Satellite pin: with `batching: false` the engine must walk the exact
    // pre-batch per-event path — same events count, zero batches, and the
    // same match stream in the same order as explicit `step()` calls.
    let g = ALL_PROFILES[2].generate(21, 0.3);
    let delta = ALL_PROFILES[2].window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(6, 0.5, delta / 2, 77).expect("query");
    let mut via_run = TcmEngine::new(&q, &g, delta, EngineConfig::default()).unwrap();
    let all = via_run.run();
    let mut via_step = TcmEngine::new(&q, &g, delta, EngineConfig::default()).unwrap();
    let mut stepped = Vec::new();
    while via_step.step(&mut stepped) {}
    assert_eq!(all, stepped);
    assert_eq!(via_run.stats().batches, 0);
    assert_eq!(via_run.stats(), via_step.stats());
}
