//! The `tcsm-serviced` daemon end-to-end, in one process: a server thread
//! runs the wire loop over the mini-SNAP fixture while a loopback
//! [`Client`] admits standing queries, streams their matches, checkpoints,
//! and then *kills* the daemon mid-stream. A second daemon restores from
//! the checkpoint, the client resubscribes, and the drained suffix must
//! stitch onto the pre-kill prefix byte-for-byte.
//!
//! The demo double-checks itself against an in-process reference service
//! with [`CollectingSink`]s: every query's `prefix + suffix` delivered
//! over the wire must equal the uninterrupted stream, and the final stats
//! fetched over the wire must agree with the reference.
//!
//! ```sh
//! cargo run --release --example daemon_demo
//! ```

use std::net::TcpListener;

use tcsm::datasets::ingest::windows_for_stream;
use tcsm::datasets::QueryGen;
use tcsm::graph::io::{parse_snap, SnapOptions};
use tcsm::prelude::*;
use tcsm::server::{restore_service, serve, Client, ServerConfig};

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        directed: true,
        ..EngineConfig::default()
    }
}

fn main() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    ))
    .expect("fixture is checked in");
    let g = parse_snap(&text, &SnapOptions::default()).expect("fixture parses");
    let delta = windows_for_stream(&g)[2];

    let mut qg = QueryGen::new(&g);
    qg.directed = true;
    let queries: Vec<QueryGraph> = (0..32u64)
        .filter_map(|seed| {
            qg.generate(
                3 + (seed % 2) as usize,
                0.5,
                (delta * 3 / 4).max(4),
                11 + seed,
            )
        })
        .take(3)
        .collect();
    assert_eq!(queries.len(), 3, "fixture hosts 3 generated queries");

    let svc_cfg = ServiceConfig {
        shards: 2,
        policy: ShardPolicy::Spread,
        directed: true,
        ..ServiceConfig::default()
    };

    // The uninterrupted reference: same admissions, in-process sinks.
    let reference: Vec<(Vec<MatchEvent>, EngineStats)> = {
        let mut svc = MatchService::new(&g, delta, svc_cfg).expect("service builds");
        let handles: Vec<(QueryId, tcsm::service::CollectedMatches)> = queries
            .iter()
            .map(|q| {
                let (sink, got) = CollectingSink::new();
                (svc.add_query(q, engine_cfg(), Box::new(sink)), got)
            })
            .collect();
        svc.run();
        handles
            .into_iter()
            .map(|(id, got)| (got.take(), *svc.query_stats(id).expect("resident")))
            .collect()
    };

    let dir = std::env::temp_dir().join(format!("tcsm-daemon-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let server_cfg = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        autorun: false,
        metrics_addr: None,
    };

    // ---- Phase 1: fresh daemon, admit, stream half, checkpoint, kill.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    println!(
        "daemon 1 listening on {addr} (checkpoints in {})",
        dir.display()
    );

    let (qids, prefixes) = std::thread::scope(|s| {
        let server = s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, svc_cfg).expect("service builds");
            serve(listener, &mut svc, &server_cfg).expect("daemon 1 serves")
        });

        let mut client = Client::connect(addr).expect("connect");
        let qids: Vec<u32> = queries
            .iter()
            .map(|q| client.admit(q, engine_cfg()).expect("admit"))
            .collect();
        for (i, qid) in qids.iter().enumerate() {
            println!("  admitted query {i} as qid {qid}");
        }

        let (_, _, remaining) = client.service_stats().expect("stats");
        let half = remaining / 2;
        let (taken, done) = client.step(half).expect("step");
        assert_eq!(taken, half, "half the stream lies ahead");
        assert!(!done, "the kill happens mid-stream");
        client.checkpoint().expect("checkpoint");
        println!("  streamed {taken}/{remaining} deltas, checkpointed, killing daemon 1");
        // shutdown(false): disk state stays at the explicit checkpoint,
        // exactly as if the process had died right after writing it.
        client.shutdown(false).expect("shutdown");
        server.join().expect("daemon 1 thread");

        let prefixes: Vec<QueryStreamParts> = qids
            .iter()
            .map(|&qid| {
                let s = client.take_stream(qid);
                (s.events, s.occurred, s.expired)
            })
            .collect();
        (qids, prefixes)
    });

    // ---- Phase 2: restore from the checkpoint, resubscribe, drain.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    println!("daemon 2 restored from checkpoint, listening on {addr}");

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            let mut svc = restore_service(&g, &dir, RecoveryPolicy::Strict).expect("restore");
            serve(listener, &mut svc, &server_cfg).expect("daemon 2 serves")
        });

        let mut client = Client::connect(addr).expect("connect");
        for &qid in &qids {
            client.resubscribe(qid).expect("resubscribe");
        }
        let (_, done) = client.step(0).expect("drain");
        assert!(done, "stream exhausted");

        for (i, &qid) in qids.iter().enumerate() {
            let suffix = client.take_stream(qid);
            let (ref full, ref stats) = reference[i];
            let (ref pre_events, pre_occ, pre_exp) = prefixes[i];
            let mut stitched = pre_events.clone();
            stitched.extend(suffix.events.iter().cloned());
            assert_eq!(&stitched, full, "qid {qid} diverged from the reference");
            assert_eq!(
                (pre_occ + suffix.occurred, pre_exp + suffix.expired),
                (
                    full.iter()
                        .filter(|e| e.kind == MatchKind::Occurred)
                        .count() as u64,
                    full.iter().filter(|e| e.kind == MatchKind::Expired).count() as u64,
                ),
                "qid {qid} delivered counts diverged"
            );
            let (resident, wire_stats) = client.query_stats(qid).expect("query stats");
            assert!(resident, "qid {qid} still resident");
            assert_eq!(
                wire_stats.semantic(),
                stats.semantic(),
                "qid {qid} stats diverged from the reference"
            );
            println!(
                "  qid {qid}: prefix {} + suffix {} events — stitches onto the reference exactly",
                pre_events.len(),
                suffix.events.len()
            );
        }

        // Retire one query over the wire: final stats, slot freed.
        let final_stats = client.retire(qids[0]).expect("retire");
        assert_eq!(final_stats.semantic(), reference[0].1.semantic());
        let (resident, _) = client.query_stats(qids[0]).expect("peek retired");
        assert!(!resident, "retired query no longer resident");
        println!(
            "  qid {}: retired over the wire with the reference's final stats",
            qids[0]
        );

        client.shutdown(false).expect("shutdown");
        server.join().expect("daemon 2 thread");
    });

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nkill → restore → resubscribe replayed every stream byte-identically ✓");
}

type QueryStreamParts = (Vec<MatchEvent>, u64, u64);
