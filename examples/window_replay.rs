//! Event-by-event replay: drive the engine with `step`, watch the window
//! and the data structures evolve, and serialize the workload to the text
//! format.
//!
//! ```sh
//! cargo run --release --example window_replay
//! ```

use tcsm::datasets::{profiles::SUPERUSER, QueryGen};
use tcsm::graph::io;
use tcsm::prelude::*;

fn main() {
    let g = SUPERUSER.generate(7, 0.3);
    let delta = SUPERUSER.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let query = qg
        .generate(7, 0.5, delta / 2, 1234)
        .expect("query generation succeeds");

    // Round-trip the workload through the text format (the on-disk form).
    let q_text = io::write_query_graph(&query);
    let g_text = io::write_temporal_graph(&g);
    let query = io::parse_query_graph(&q_text).unwrap();
    let g = io::parse_temporal_graph(&g_text).unwrap();
    println!(
        "workload: {} data edges, window {delta}, query {} edges (density {:.2})\n",
        g.num_edges(),
        query.num_edges(),
        query.order().density()
    );

    let cfg = EngineConfig {
        directed: true,
        ..Default::default()
    };
    let mut engine = TcmEngine::new(&query, &g, delta, cfg).unwrap();
    let mut out = Vec::new();
    let mut tick = 0u64;
    let mut last_report = 0u64;
    while engine.step(&mut out) {
        tick += 1;
        for ev in out.drain(..) {
            println!(
                "t={:>5} {:?}: vertices {:?}",
                ev.at.raw(),
                ev.kind,
                ev.embedding.vertices
            );
        }
        // Periodic structure report (the quantities of Table V).
        if tick - last_report >= (g.num_edges() as u64 / 4).max(1) {
            last_report = tick;
            println!(
                "  [event {tick}] window: {} alive edges | DCS: {} edge pairs, {} candidate vertices",
                engine.window().num_alive_edges(),
                engine.dcs_edges(),
                engine.dcs_vertices()
            );
        }
    }
    let s = engine.stats();
    println!(
        "\ndone: {} events, {} occurred, {} expired, peak DCS edges {}, peak DCS vertices {}",
        s.events, s.occurred, s.expired, s.peak_dcs_edges, s.peak_dcs_vertices
    );
}
