//! Replay a real-format SNAP temporal edge list through the engine.
//!
//! Loads the checked-in miniature SNAP fixture (sparse ids, epoch
//! timestamps, bursts, duplicate triples, self-loops — everything the real
//! wiki-talk / sx-superuser / sx-stackoverflow dumps throw at a loader),
//! generates a query on the ingested stream, and replays it through the
//! serial, batched and two-thread engine paths, checking the three match
//! streams agree (byte-identical across pool widths; order-normalized
//! between the per-event and per-batch regimes, whose same-instant
//! emission order differs by design).
//!
//! ```sh
//! cargo run --release --example snap_replay
//! ```

use tcsm::datasets::ingest::{DatasetSource, FileSource};
use tcsm::datasets::QueryGen;
use tcsm::graph::io::{parse_snap_with_stats, SnapOptions};
use tcsm::prelude::*;

fn replay(
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    batching: bool,
    threads: usize,
) -> Vec<MatchEvent> {
    let cfg = EngineConfig {
        directed: true,
        batching,
        threads,
        ..Default::default()
    };
    let mut engine = TcmEngine::new(q, g, delta, cfg).unwrap();
    if batching {
        engine.run_batched()
    } else {
        engine.run()
    }
}

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    );
    let text = std::fs::read_to_string(path).expect("fixture is checked in");
    let opts = SnapOptions::default();
    let (g, stats) = parse_snap_with_stats(&text, &opts).expect("fixture parses");
    println!(
        "ingested {path}:\n  {} lines → {} edges over {} vertices \
         (raw ids up to {}, {} self-loops skipped, {} duplicate triples)",
        stats.lines,
        stats.edges,
        stats.vertices,
        stats.raw_id_max,
        stats.self_loops_skipped,
        stats.duplicate_triples
    );
    println!(
        "  epochs [{}, {}] rescaled to [0, {}], mavg {:.2}, davg {:.1}\n",
        stats.epoch_min,
        stats.epoch_max,
        stats.epoch_max - stats.epoch_min,
        g.avg_parallel_edges(),
        g.avg_degree()
    );

    // Window and query derived exactly like the experiments CLI does it.
    let source = FileSource::snap(path);
    let delta = source.window_sizes(&g, 1.0)[2];
    let qg = QueryGen::new(&g);
    let query = qg
        .generate(5, 0.5, (delta * 3 / 4).max(4), 42)
        .expect("fixture supports size-5 walks");
    println!(
        "query: {} edges, {} vertices, order density {:.2}, window {delta}\n",
        query.num_edges(),
        query.num_vertices(),
        query.order().density()
    );

    // The same stream through three engine regimes. Batched vs threaded is
    // byte-identical (the worker pool merges in deterministic seed order);
    // serial vs batched agree as ordered (instant, kind, embedding) sets —
    // a combined per-batch sweep may interleave same-instant emissions
    // differently than per-event sweeps do.
    let serial = replay(&query, &g, delta, false, 0);
    let batched = replay(&query, &g, delta, true, 0);
    let threaded = replay(&query, &g, delta, true, 2);
    assert_eq!(batched, threaded, "threads=2 replay diverged from batched");
    let canon = |evs: &[MatchEvent]| {
        let mut v: Vec<_> = evs
            .iter()
            .map(|m| (m.kind, m.at, m.embedding.clone()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        canon(&serial),
        canon(&batched),
        "batched replay diverged from serial"
    );

    let occurred = serial
        .iter()
        .filter(|m| m.kind == MatchKind::Occurred)
        .count();
    let expired = serial.len() - occurred;
    println!(
        "match stream: {occurred} occurred, {expired} expired — \
         serial, batched and threads=2 paths agree"
    );
    for ev in serial.iter().take(5) {
        println!(
            "  t={:>3} {:?}: vertices {:?}",
            ev.at.raw(),
            ev.kind,
            ev.embedding.vertices
        );
    }
    if serial.len() > 5 {
        println!("  … {} more", serial.len() - 5);
    }
}
