//! The sharded multi-query service on a real-format stream: 8 concurrent
//! standing queries over the mini-SNAP fixture, **one shared window per
//! shard** instead of one per engine, with a query retired and a fresh one
//! admitted *while the stream runs*.
//!
//! The demo double-checks itself: every per-query stream is compared
//! byte-for-byte against a standalone `TcmEngine` run of that query (the
//! mid-stream admission against the standalone suffix), and the service
//! stats must show exactly one `WindowGraph` allocation per shard.
//!
//! ```sh
//! cargo run --release --example service_demo
//! ```

use tcsm::datasets::ingest::{DatasetSource, FileSource};
use tcsm::datasets::QueryGen;
use tcsm::graph::io::{parse_snap_with_stats, SnapOptions};
use tcsm::prelude::*;

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        directed: true,
        ..Default::default()
    }
}

/// Standalone engine run recorded per event, so mid-stream admission and
/// removal points align with service steps.
fn standalone_per_event(q: &QueryGraph, g: &TemporalGraph, delta: i64) -> Vec<Vec<MatchEvent>> {
    let mut e = TcmEngine::new(q, g, delta, engine_cfg()).expect("engine builds");
    let mut steps = Vec::new();
    let mut buf = Vec::new();
    while e.step(&mut buf) {
        steps.push(std::mem::take(&mut buf));
    }
    steps
}

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    );
    let text = std::fs::read_to_string(path).expect("fixture is checked in");
    let (g, stats) = parse_snap_with_stats(&text, &SnapOptions::default()).expect("parses");
    println!(
        "stream: {} edges over {} vertices ({} events)",
        stats.edges,
        stats.vertices,
        2 * stats.edges
    );

    let source = FileSource::snap(path);
    let delta = source.window_sizes(&g, 1.0)[0];
    let mut qg = QueryGen::new(&g);
    qg.directed = true;
    let queries: Vec<QueryGraph> = (0..16u64)
        .filter_map(|seed| {
            let size = 3 + (seed % 3) as usize;
            let density = [0.0, 0.5, 1.0][(seed % 3) as usize];
            qg.generate(size, density, (delta * 3 / 4).max(4), 101 + seed)
        })
        .take(8)
        .collect();
    assert_eq!(queries.len(), 8, "fixture hosts 8 generated queries");
    // A ninth query admitted mid-stream once a slot frees up.
    let late_query = qg
        .generate(4, 0.5, (delta * 3 / 4).max(4), 999)
        .expect("late query generates");

    // threads from TCSM_THREADS (0 = drive all shards on the caller).
    // `Spread` placement so every shard hosts residents: the default
    // `LabelLocality` policy co-locates queries sharing vertex labels, and
    // this fixture's walk queries all read the same few degree-bucket
    // labels, so locality would (by design) pack them onto one shared
    // window.
    let service_cfg = ServiceConfig {
        shards: 4,
        policy: ShardPolicy::Spread,
        directed: true,
        ..ServiceConfig::default()
    };
    println!(
        "service: {} shards (one shared WindowGraph each), threads {}, window {delta}\n",
        service_cfg.shards, service_cfg.threads
    );
    let mut svc = MatchService::new(&g, delta, service_cfg).expect("service builds");
    let mut handles: Vec<(QueryId, tcsm::service::CollectedMatches)> = queries
        .iter()
        .map(|q| {
            let (sink, got) = CollectingSink::new();
            (svc.add_query(q, engine_cfg(), Box::new(sink)), got)
        })
        .collect();
    for (i, (id, _)) in handles.iter().enumerate() {
        println!(
            "  admitted query {i} ({} edges) as {id} on shard {}",
            queries[i].num_edges(),
            svc.shard_of(*id).expect("resident")
        );
    }

    // Drive the stream; at 1/2 retire query 0 and admit the late query.
    let total = svc.remaining_events();
    let (remove_at, admit_at) = (total / 2, total / 2);
    let mut late: Option<(QueryId, tcsm::service::CollectedMatches, usize)> = None;
    let mut removed_stats = None;
    for step in 0..total {
        if step == remove_at {
            let stats = svc.remove_query(handles[0].0).expect("query 0 resident");
            println!(
                "\n  t½: retired {} after {} events ({} occurred, {} expired)",
                handles[0].0, stats.events, stats.occurred, stats.expired
            );
            removed_stats = Some(stats);
        }
        if step == admit_at {
            let (sink, got) = CollectingSink::new();
            let id = svc.add_query(&late_query, engine_cfg(), Box::new(sink));
            println!(
                "  t½: admitted late query as {id} on shard {} (synced to the live window)\n",
                svc.shard_of(id).expect("resident")
            );
            late = Some((id, got, step));
        }
        assert!(svc.step(), "stream ends exactly at the recorded length");
    }
    assert!(!svc.step(), "stream exhausted");

    // Self-check 1: one window per shard, the whole run.
    let s = svc.stats();
    assert_eq!(s.windows_allocated, s.shards as u64);
    println!(
        "service stats: {} events in {} shards, {} windows allocated, \
         {} admitted / {} retired",
        s.events, s.shards, s.windows_allocated, s.admitted, s.retired
    );

    // Self-check 2: every stream byte-identical to its standalone engine.
    let removed = handles.remove(0);
    for (i, (id, got)) in handles.iter().enumerate() {
        let expect: Vec<MatchEvent> = standalone_per_event(&queries[i + 1], &g, delta)
            .into_iter()
            .flatten()
            .collect();
        let stream = got.take();
        assert_eq!(stream, expect, "query {id} diverged from standalone");
        let st = svc.query_stats(*id).expect("resident");
        println!(
            "  {id}: {} occurred, {} expired, {} search nodes — matches standalone",
            st.occurred, st.expired, st.search_nodes
        );
    }
    // The retired query delivered exactly the standalone prefix…
    let prefix: Vec<MatchEvent> = standalone_per_event(&queries[0], &g, delta)[..remove_at]
        .iter()
        .flatten()
        .cloned()
        .collect();
    assert_eq!(removed.1.take(), prefix, "retired query's prefix diverged");
    println!(
        "  {}: retired mid-stream with the exact standalone prefix ({} events delivered)",
        removed.0,
        removed_stats.expect("recorded").events
    );
    // …and the late admission exactly the standalone suffix.
    let (late_id, late_got, admitted_at) = late.expect("late query admitted");
    let suffix: Vec<MatchEvent> = standalone_per_event(&late_query, &g, delta)[admitted_at..]
        .iter()
        .flatten()
        .cloned()
        .collect();
    assert_eq!(late_got.take(), suffix, "late admission suffix diverged");
    println!(
        "  {late_id}: admitted mid-stream, reports the exact standalone suffix \
         ({} occurred)",
        svc.query_stats(late_id).expect("resident").occurred
    );
    println!("\nall per-query streams byte-identical to standalone engines ✓");
}
