//! Crash-safe service on a real-format stream: run the mini-SNAP fixture
//! halfway, checkpoint, "crash" (drop the service), and resume from disk.
//!
//! The demo double-checks itself three ways:
//!
//! 1. **Kill-and-resume differential** — the resumed service's per-query
//!    match stream must be byte-identical to the suffix an uninterrupted
//!    run delivers after the kill point.
//! 2. **Corrupt corpus, Strict** — a flipped byte, a truncated shard file,
//!    and a missing shard file must each surface as a typed
//!    [`SnapshotError`] under [`RecoveryPolicy::Strict`], never a panic.
//! 3. **Corrupt corpus, Rebuild** — the same damage under
//!    [`RecoveryPolicy::Rebuild`] must recover transparently by replaying
//!    the stream prefix, and the recovered service must again deliver the
//!    exact suffix.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use tcsm::datasets::ingest::{DatasetSource, FileSource};
use tcsm::datasets::QueryGen;
use tcsm::graph::io::{parse_snap_with_stats, SnapOptions};
use tcsm::prelude::*;

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        directed: true,
        ..Default::default()
    }
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        directed: true,
        ..Default::default()
    }
}

/// Builds the service with the fixture queries; returns it plus each
/// query's collector in admission order.
fn build<'g>(
    g: &'g TemporalGraph,
    delta: i64,
    queries: &[QueryGraph],
) -> (MatchService<'g>, Vec<(QueryId, CollectedMatches)>) {
    let mut svc = MatchService::new(g, delta, service_cfg()).expect("service builds");
    let handles = queries
        .iter()
        .map(|q| {
            let (sink, got) = CollectingSink::new();
            (svc.add_query(q, engine_cfg(), Box::new(sink)), got)
        })
        .collect();
    (svc, handles)
}

/// Restores from `dir` and drains the stream; returns per-query suffixes.
fn resume(
    g: &TemporalGraph,
    dir: &Path,
    policy: RecoveryPolicy,
) -> Result<HashMap<QueryId, Vec<MatchEvent>>, SnapshotError> {
    let mut sinks: HashMap<QueryId, CollectedMatches> = HashMap::new();
    let mut svc = MatchService::restore(g, dir, policy, |qid| {
        let (sink, got) = CollectingSink::new();
        sinks.insert(qid, got);
        Box::new(sink)
    })?;
    svc.run();
    Ok(sinks
        .into_iter()
        .map(|(id, got)| (id, got.take()))
        .collect())
}

fn check_suffixes(
    resumed: &HashMap<QueryId, Vec<MatchEvent>>,
    expect: &[(QueryId, Vec<MatchEvent>)],
    what: &str,
) {
    for (id, suffix) in expect {
        assert_eq!(
            &resumed[id], suffix,
            "{what}: resumed stream diverged for {id}"
        );
    }
    println!(
        "  {what}: {} queries, {} suffix events — identical",
        expect.len(),
        expect.iter().map(|(_, s)| s.len()).sum::<usize>()
    );
}

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/datasets/fixtures/mini-snap.txt"
    );
    let text = std::fs::read_to_string(path).expect("fixture is checked in");
    let (g, stats) = parse_snap_with_stats(&text, &SnapOptions::default()).expect("parses");
    let source = FileSource::snap(path);
    let delta = source.window_sizes(&g, 1.0)[0];
    println!(
        "stream: {} edges over {} vertices, window {delta}",
        stats.edges, stats.vertices
    );

    let mut qg = QueryGen::new(&g);
    qg.directed = true;
    let queries: Vec<QueryGraph> = (0..16u64)
        .filter_map(|seed| {
            let size = 3 + (seed % 3) as usize;
            qg.generate(size, 0.5, (delta * 3 / 4).max(4), 101 + seed)
        })
        .take(4)
        .collect();
    assert!(!queries.is_empty(), "fixture hosts generated queries");

    // Uninterrupted reference run, split at the kill point.
    let kill_at = 2 * stats.edges / 2; // halfway through the event stream
    let (mut svc, handles) = build(&g, delta, &queries);
    for _ in 0..kill_at {
        svc.step();
    }
    for (_, got) in &handles {
        got.take(); // discard the prefix; the suffix is the contract
    }
    svc.run();
    let expect: Vec<(QueryId, Vec<MatchEvent>)> =
        handles.iter().map(|(id, got)| (*id, got.take())).collect();

    // The "crashing" run: same service, checkpointed at the kill point.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("tcsm-checkpoint-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut svc, _handles) = build(&g, delta, &queries);
    for _ in 0..kill_at {
        svc.step();
    }
    svc.checkpoint(&dir).expect("checkpoint succeeds");
    drop(svc); // the crash

    let n_files = std::fs::read_dir(&dir).unwrap().count();
    println!("checkpoint at event {kill_at}: {n_files} files (manifest + one per shard)");

    println!("resume after clean checkpoint:");
    let resumed = resume(&g, &dir, RecoveryPolicy::Strict).expect("clean restore");
    check_suffixes(&resumed, &expect, "strict resume");

    // -- corrupt corpus ---------------------------------------------------
    let shard0 = dir.join("shard-0.tcsm");
    let pristine = std::fs::read(&shard0).unwrap();

    println!("corrupt corpus (Strict errors, Rebuild recovers):");
    type Corruption<'a> = (&'a str, Box<dyn Fn()>);
    let corruptions: Vec<Corruption> = vec![
        (
            "flipped byte",
            Box::new({
                let (shard0, pristine) = (shard0.clone(), pristine.clone());
                move || {
                    let mut bad = pristine.clone();
                    let mid = bad.len() / 2;
                    bad[mid] ^= 0x40;
                    std::fs::write(&shard0, &bad).unwrap();
                }
            }),
        ),
        (
            "truncated file",
            Box::new({
                let (shard0, pristine) = (shard0.clone(), pristine.clone());
                move || std::fs::write(&shard0, &pristine[..pristine.len() / 3]).unwrap()
            }),
        ),
        (
            "missing file",
            Box::new({
                let shard0 = shard0.clone();
                move || std::fs::remove_file(&shard0).unwrap()
            }),
        ),
    ];
    for (what, inflict) in corruptions {
        inflict();
        match resume(&g, &dir, RecoveryPolicy::Strict) {
            Ok(_) => panic!("{what}: corrupt checkpoint restored under Strict"),
            Err(e) => println!("  {what} under Strict: {e}"),
        }
        let resumed = resume(&g, &dir, RecoveryPolicy::Rebuild)
            .unwrap_or_else(|e| panic!("{what}: Rebuild failed: {e}"));
        check_suffixes(&resumed, &expect, &format!("{what} under Rebuild"));
        std::fs::write(&shard0, &pristine).unwrap();
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("crash-safe: suffixes identical, corruption detected or rebuilt");
}
