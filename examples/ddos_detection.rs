//! DDoS-pattern detection over streaming network traffic — the paper's
//! Figure 1 motivation.
//!
//! The query models the core of a DDoS attack: an attacker commands `k`
//! zombies (`t_{i,1}`), each of which then attacks the victim (`t_{i,2}`),
//! with the temporal constraint `t_{i,1} ≺ t_{i,2}` per zombie. Any real
//! attack contains this pattern as a subgraph, so detecting it identifies
//! the attacker.
//!
//! A synthetic packet stream of background traffic is generated, an attack
//! is injected, and the TCM engine flags it as it completes.
//!
//! ```sh
//! cargo run --release --example ddos_detection
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsm::prelude::*;

const ZOMBIES: usize = 3;

/// Builds the Figure 1 query: attacker → zombie_i (command), zombie_i →
/// victim (attack), command ≺ attack per zombie.
fn ddos_query() -> QueryGraph {
    // Labels: 0 = generic host. Direction matters: commands flow from the
    // attacker, attacks flow to the victim.
    let mut qb = QueryGraphBuilder::new();
    let attacker = qb.vertex(0);
    let victim = qb.vertex(0);
    for _ in 0..ZOMBIES {
        let z = qb.vertex(0);
        let command = qb.edge_full(attacker, z, Direction::AToB, EDGE_LABEL_ANY);
        let attack = qb.edge_full(z, victim, Direction::AToB, EDGE_LABEL_ANY);
        qb.precede(command, attack);
    }
    qb.build().expect("valid DDoS query")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let hosts = 160u32;
    let mut gb = TemporalGraphBuilder::new();
    let _ = gb.vertices(hosts as usize, 0);

    // Background traffic: random packets between random hosts.
    let mut t = 0i64;
    let mut inject = Vec::new();
    for step in 0..1500 {
        t += 1;
        // Around step 700: attacker (host 0) commands zombies 10, 11, 12,
        // which then strike victim (host 1) — interleaved with noise.
        match step {
            700 => inject.push((0u32, 10u32, t)),
            705 => inject.push((0, 11, t)),
            712 => inject.push((10, 1, t)),
            715 => inject.push((0, 12, t)),
            720 => inject.push((11, 1, t)),
            731 => inject.push((12, 1, t)),
            _ => {}
        }
        if let Some(&(a, b, at)) = inject.last() {
            if at == t {
                gb.edge(a, b, t);
                continue;
            }
        }
        let a = rng.gen_range(0..hosts);
        let mut b = rng.gen_range(0..hosts);
        while b == a {
            b = rng.gen_range(0..hosts);
        }
        gb.edge(a, b, t);
    }
    let traffic = gb.build().unwrap();

    let query = ddos_query();
    let cfg = EngineConfig {
        directed: true,
        ..Default::default()
    };
    // Window: commands and attacks must land within 100 time units.
    let mut engine = TcmEngine::new(&query, &traffic, 100, cfg).unwrap();
    let events = engine.run();

    let mut detections = 0;
    for ev in &events {
        if ev.kind != MatchKind::Occurred {
            continue;
        }
        detections += 1;
        if detections <= 5 {
            let attacker = ev.embedding.vertices[0];
            let victim = ev.embedding.vertices[1];
            let zombies: Vec<_> = ev.embedding.vertices[2..].to_vec();
            println!(
                "t={:>4}: DDoS pattern — attacker host {attacker}, victim host {victim}, zombies {zombies:?}",
                ev.at.raw()
            );
        }
    }
    println!(
        "\n{} pattern occurrence(s) over {} packets ({} search nodes)",
        detections,
        traffic.num_edges(),
        engine.stats().search_nodes
    );
    // The injected attack (botmaster host 0 → victim host 1, completing at
    // t = 732) must be among the detections. Background noise can also form
    // the pattern — like real traffic would — so other detections are fine.
    let injected_found = events
        .iter()
        .filter(|e| e.kind == MatchKind::Occurred)
        .any(|e| {
            e.embedding.vertices[0] == 0 && e.embedding.vertices[1] == 1 && e.at == Ts::new(732)
        });
    assert!(injected_found, "the injected attack must be found");
    println!("injected attack identified: botmaster host 0 → victim host 1 at t=732");
}
