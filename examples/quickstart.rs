//! Quickstart: define a temporal query, stream a temporal graph through the
//! TCM engine, and print every occurrence/expiration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tcsm::prelude::*;

fn main() {
    // Query: the paper's running example (Figure 2c) — five vertices, six
    // edges, constraints like ε1 ≺ ε3 and ε2 ≺ ε6.
    let query = tcsm::graph::query::paper_running_example();
    println!(
        "query: {} vertices, {} edges, {} temporal pairs (density {:.2})",
        query.num_vertices(),
        query.num_edges(),
        query.order().num_pairs(),
        query.order().density()
    );

    // Data: the paper's Figure 2a — σ1..σ14 arriving at t = 1..14.
    let mut gb = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 5, 2, 3, 5, 4];
    let v: Vec<_> = labels.iter().map(|&l| gb.vertex(l)).collect();
    for (a, b, t) in [
        (0, 1, 1),
        (3, 4, 2),
        (3, 4, 3),
        (0, 3, 4),
        (3, 6, 5),
        (0, 1, 6),
        (3, 6, 7),
        (0, 3, 8),
        (4, 6, 9),
        (4, 6, 10),
        (1, 4, 11),
        (0, 3, 12),
        (3, 4, 13),
        (3, 6, 14),
    ] {
        gb.edge(v[a], v[b], t);
    }
    let stream = gb.build().unwrap();

    // Window δ = 10, as in Example II.2.
    let mut engine = TcmEngine::new(&query, &stream, 10, EngineConfig::default()).unwrap();
    println!(
        "query DAG score (temporal ancestor-descendant pairs): {}",
        engine.dag().score()
    );

    for ev in engine.run() {
        let times: Vec<i64> = ev
            .embedding
            .edge_times(&stream)
            .iter()
            .map(|t| t.raw())
            .collect();
        println!(
            "t={:>3}  {:?}  edge times {:?}",
            ev.at.raw(),
            ev.kind,
            times
        );
    }

    let s = engine.stats();
    println!(
        "\n{} events, {} search nodes, {} occurred, {} expired",
        s.events, s.search_nodes, s.occurred, s.expired
    );
    println!(
        "pruning: case1 {} case2 {} case3 {} (clones {})",
        s.pruned_case1, s.pruned_case2, s.pruned_case3, s.cloned_case1
    );

    // ----- Many standing queries over one stream ---------------------------
    //
    // A deployment rarely runs one query: `MatchService` (tcsm-service)
    // serves many standing queries over the same stream, sharing one live
    // window per *shard* instead of one per engine. Queries are admitted
    // (and retired) at runtime — even mid-stream, where the new query is
    // synchronized to the live window and then reports exactly what a
    // from-the-start engine would from that point on. Each query delivers
    // through its own sink; per-query streams are byte-identical to the
    // standalone engine above (see tests/service_equivalence.rs and
    // examples/service_demo.rs for the full tour).
    let mut service = MatchService::new(&stream, 10, ServiceConfig::default()).unwrap();
    let (sink, collected) = CollectingSink::new();
    let id = service.add_query(&query, EngineConfig::default(), Box::new(sink));
    // A second standing query — a single forward hop — rides the same
    // shared window at no extra window cost.
    let mut qb = tcsm::graph::QueryGraphBuilder::new();
    let (a, b) = (qb.vertex(0), qb.vertex(2));
    qb.edge(a, b);
    let hop = qb.build().unwrap();
    let (hop_sink, hop_collected) = CollectingSink::new();
    let hop_id = service.add_query(&hop, EngineConfig::default(), Box::new(hop_sink));
    service.run();
    println!(
        "\nservice: {} queries over {} shard(s), {} window(s) allocated",
        service.stats().resident_queries,
        service.stats().shards,
        service.stats().windows_allocated
    );
    println!(
        "  {id}: {} events delivered (same stream as the engine above)",
        collected.len()
    );
    println!(
        "  {hop_id}: {} events for the one-hop query",
        hop_collected.len()
    );

    // ----- Checkpoint & recovery -------------------------------------------
    //
    // The service is crash-safe: `checkpoint(dir)` snapshots every shard's
    // window and every query's runtime state into versioned, checksummed
    // files (written atomically — temp file, sync, rename), and `restore`
    // resumes with the exact match-stream suffix of an uninterrupted run.
    // `RecoveryPolicy` decides what a corrupt shard file means: `Strict`
    // surfaces a typed `SnapshotError`, `Rebuild` replays the stream prefix
    // instead. See examples/checkpoint_resume.rs for the full tour,
    // including the corrupt-snapshot corpus.
    let mut service = MatchService::new(&stream, 10, ServiceConfig::default()).unwrap();
    let (sink, _collected) = CollectingSink::new();
    service.add_query(&query, EngineConfig::default(), Box::new(sink));
    for _ in 0..14 {
        service.step(); // half of the 28-event stream
    }
    let dir = std::env::temp_dir().join(format!("tcsm-quickstart-{}", std::process::id()));
    service.checkpoint(&dir).unwrap();
    drop(service); // the "crash"
    let mut resumed = MatchService::restore(&stream, &dir, RecoveryPolicy::Strict, |_| {
        Box::new(CollectingSink::new().0)
    })
    .unwrap();
    resumed.run();
    println!(
        "\nrestored from checkpoint at event 14, resumed to event {}",
        resumed.stats().events
    );
    let _ = std::fs::remove_dir_all(&dir);
}
