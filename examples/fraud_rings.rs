//! Money-laundering ring detection in a transaction stream.
//!
//! A "ring" is money leaving an account, hopping through mules, and coming
//! back: a cycle whose transactions are strictly ordered in time (a total
//! temporal order — density 1 in the paper's terms). The stream is the
//! Yahoo-profile generator plus injected rings; the example contrasts the
//! TCM engine against the SymBi post-check baseline on the same workload.
//!
//! ```sh
//! cargo run --release --example fraud_rings
//! ```

use tcsm::datasets::profiles::YAHOO;
use tcsm::prelude::*;

/// A k-cycle with a total temporal order around the ring.
fn ring_query(k: usize) -> QueryGraph {
    let mut qb = QueryGraphBuilder::new();
    let vs: Vec<_> = (0..k).map(|_| qb.vertex(0)).collect();
    let mut prev: Option<usize> = None;
    for i in 0..k {
        let e = qb.edge_full(vs[i], vs[(i + 1) % k], Direction::AToB, EDGE_LABEL_ANY);
        if let Some(p) = prev {
            qb.precede(p, e);
        }
        prev = Some(e);
    }
    qb.build().expect("valid ring query")
}

fn main() {
    // Background: Yahoo-style messaging/transaction traffic, all label 0.
    let mut profile = YAHOO;
    profile.vertex_labels = 1;
    let base = profile.generate(99, 0.6);

    // Re-build with three injected 4-rings spliced into the timeline.
    let mut gb = TemporalGraphBuilder::new();
    let n = base.num_vertices() as u32;
    let _ = gb.vertices(base.num_vertices(), 0);
    for e in base.edges() {
        gb.edge(e.src, e.dst, e.time.raw() * 10);
    }
    let mut injected = 0;
    for (start, accounts) in [
        (2000i64, [3u32, 17, 8, 25]),
        (9000, [40, 2, 31, 7]),
        (16000, [5, 12, 19, 33]),
    ] {
        if accounts.iter().all(|&a| a < n) {
            for i in 0..4 {
                gb.edge(accounts[i], accounts[(i + 1) % 4], start + 3 * i as i64);
            }
            injected += 1;
        }
    }
    let stream = gb.build().unwrap();

    let query = ring_query(4);
    let delta = 2000;
    let cfg = EngineConfig {
        directed: true,
        ..Default::default()
    };
    let mut tcm = TcmEngine::new(&query, &stream, delta, cfg).unwrap();
    let start = std::time::Instant::now();
    let events = tcm.run();
    let tcm_time = start.elapsed();

    let cfg_post = EngineConfig {
        preset: AlgorithmPreset::SymBiPostCheck,
        directed: true,
        ..Default::default()
    };
    let mut symbi = TcmEngine::new(&query, &stream, delta, cfg_post).unwrap();
    let start = std::time::Instant::now();
    let symbi_events = symbi.run();
    let symbi_time = start.elapsed();

    let rings: Vec<_> = events
        .iter()
        .filter(|e| e.kind == MatchKind::Occurred)
        .collect();
    for ev in rings.iter().take(6) {
        println!(
            "t={:>6}: ring through accounts {:?}",
            ev.at.raw(),
            ev.embedding.vertices
        );
    }
    println!(
        "\nTCM:   {:>6} rings in {:?} ({} search nodes)",
        rings.len(),
        tcm_time,
        tcm.stats().search_nodes
    );
    println!(
        "SymBi: {:>6} rings in {:?} ({} search nodes, {} post-check rejections)",
        symbi_events
            .iter()
            .filter(|e| e.kind == MatchKind::Occurred)
            .count(),
        symbi_time,
        symbi.stats().search_nodes,
        symbi.stats().post_check_rejections
    );
    assert!(rings.len() >= injected, "all injected rings must be found");
    assert_eq!(
        rings.len(),
        symbi_events
            .iter()
            .filter(|e| e.kind == MatchKind::Occurred)
            .count(),
        "both algorithms must agree"
    );
}
